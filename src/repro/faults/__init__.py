"""Fault injection, chaos campaigns, and reliability reporting.

This package makes the support system's failure story testable: scripted
:class:`FaultPlan`\\ s and seeded randomized :class:`FaultCampaign`\\ s
describe *what* goes wrong (node crashes, link flaps, lossy windows,
Earth-link blackouts, beacon outages, badge battery/SD-card faults), the
:class:`FaultInjector` replays the bus-level events onto a live support
stack, and :func:`run_support_scenario` reduces a faulted run to a
:class:`ReliabilityReport` — availability, MTTR, and per-kind delivery
success under the reliable-transport guarantees of
:mod:`repro.support.bus`.
"""

from repro.faults.campaign import FaultCampaign
from repro.faults.data import apply_data_faults
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    BUS_ACTIONS,
    DATA_ACTIONS,
    SENSING_ACTIONS,
    FaultEvent,
    FaultPlan,
)
from repro.faults.report import (
    ReliabilityReport,
    aggregate_delivery,
    availability_from_downtime,
)
from repro.faults.scenario import run_support_scenario
from repro.faults.service import ServiceChaos

__all__ = [
    "BUS_ACTIONS",
    "DATA_ACTIONS",
    "SENSING_ACTIONS",
    "FaultCampaign",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "ReliabilityReport",
    "ServiceChaos",
    "aggregate_delivery",
    "apply_data_faults",
    "availability_from_downtime",
    "run_support_scenario",
]
