"""Reliability reporting: availability, MTTR, delivery success.

Turns what a fault campaign actually did — the injector's downtime
intervals, every node's reliable-delivery counters, the replica pair's
role transitions — into one :class:`ReliabilityReport`: per-node
availability over the horizon, mean time to repair, per-kind delivery
success (acked / sent, with dead-letter and retry counts), duplicate
suppression, and the failover/fail-back timeline.  The dict form is
deterministic for a given seed, which is what the chaos tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.support.bus import Network
from repro.support.reliable import ReliableStats


@dataclass
class ReliabilityReport:
    """Everything a fault campaign measured."""

    horizon_s: float
    #: Per-node fraction of the horizon spent up (1.0 = never down).
    availability: dict[str, float] = field(default_factory=dict)
    #: Mean time to repair across *closed* outages (None if no closed
    #: outage).  Outages still open at the horizon are right-censored:
    #: their downtime counts against availability, but no repair was
    #: observed, so they are excluded here and surfaced in
    #: :attr:`n_censored_outages` instead of silently biasing the mean.
    mttr_s: Optional[float] = None
    n_outages: int = 0
    #: Outages that had not repaired when the horizon ended.
    n_censored_outages: int = 0
    #: Per message kind: sent/acked/dead/success over all reliable senders.
    delivery: dict[str, dict] = field(default_factory=dict)
    retries: int = 0
    duplicates_suppressed: int = 0
    dead_letters: int = 0
    pending: int = 0
    #: Bus totals (fire-and-forget accounting included).
    bus_sent: int = 0
    bus_delivered: int = 0
    bus_dropped: int = 0
    #: Replica role changes, as (sim_time, node, "take-over"|"yield").
    transitions: list[tuple[float, str, str]] = field(default_factory=list)
    primary_at_end: Optional[str] = None
    split_brain_at_end: bool = False
    faults_injected: int = 0
    faults_skipped: int = 0

    def delivery_success(self, kind: str) -> Optional[float]:
        """Acked fraction of reliable sends of ``kind``.

        Returns ``None`` when no message of that kind was ever sent —
        "no traffic" is not the same claim as "perfect delivery".
        """
        entry = self.delivery.get(kind)
        if entry is None or entry["sent"] == 0:
            return None
        return entry["acked"] / entry["sent"]

    def takeovers(self) -> list[float]:
        return [t for t, _, what in self.transitions if what == "take-over"]

    def failbacks(self) -> list[float]:
        return [t for t, _, what in self.transitions if what == "yield"]

    def to_dict(self) -> dict:
        """Deterministic, JSON-serializable snapshot."""
        return {
            "horizon_s": self.horizon_s,
            "availability": {k: self.availability[k] for k in sorted(self.availability)},
            "mttr_s": self.mttr_s,
            "n_outages": self.n_outages,
            "n_censored_outages": self.n_censored_outages,
            "delivery": {k: dict(self.delivery[k]) for k in sorted(self.delivery)},
            "retries": self.retries,
            "duplicates_suppressed": self.duplicates_suppressed,
            "dead_letters": self.dead_letters,
            "pending": self.pending,
            "bus": {
                "sent": self.bus_sent,
                "delivered": self.bus_delivered,
                "dropped": self.bus_dropped,
            },
            "transitions": [list(t) for t in self.transitions],
            "primary_at_end": self.primary_at_end,
            "split_brain_at_end": self.split_brain_at_end,
            "faults_injected": self.faults_injected,
            "faults_skipped": self.faults_skipped,
        }

    def to_text(self) -> str:
        """Human-readable campaign summary."""
        lines = [f"fault campaign over {self.horizon_s / 3600.0:.1f} h:"]
        lines.append(f"  faults injected: {self.faults_injected} "
                     f"(skipped: {self.faults_skipped})")
        if self.availability:
            worst = min(self.availability, key=self.availability.get)
            lines.append("  availability: " + ", ".join(
                f"{node}={self.availability[node]:.4f}"
                for node in sorted(self.availability)
            ) + f" (worst: {worst})")
        if self.n_outages or self.n_censored_outages:
            mttr = f"MTTR {self.mttr_s:.0f} s" if self.mttr_s is not None \
                else "MTTR n/a"
            censored = f", {self.n_censored_outages} still open at horizon" \
                if self.n_censored_outages else ""
            lines.append(f"  outages: {self.n_outages} closed, {mttr}{censored}")
        for kind in sorted(self.delivery):
            entry = self.delivery[kind]
            success = self.delivery_success(kind)
            rendered = f"{success:.1%}" if success is not None else "n/a"
            lines.append(
                f"  delivery[{kind}]: {entry['acked']}/{entry['sent']} acked "
                f"({rendered}), {entry['dead']} dead-lettered"
            )
        lines.append(
            f"  retries: {self.retries}, duplicates suppressed: "
            f"{self.duplicates_suppressed}, DLQ: {self.dead_letters}, "
            f"pending: {self.pending}"
        )
        lines.append(
            f"  bus: {self.bus_sent} sent = {self.bus_delivered} delivered "
            f"+ {self.bus_dropped} dropped"
        )
        if self.transitions:
            timeline = "; ".join(
                f"t={t:.0f} {node} {what}" for t, node, what in self.transitions
            )
            lines.append(f"  failover timeline: {timeline}")
        lines.append(
            "  primary at end: "
            f"{self.primary_at_end or '(none)'}"
            + (" [SPLIT BRAIN]" if self.split_brain_at_end else "")
        )
        return "\n".join(lines)


def aggregate_delivery(network: Network) -> tuple[dict[str, dict], ReliableStats, int, int, int]:
    """Fold every node's reliable stats into per-kind delivery entries.

    Returns ``(delivery, totals, duplicates, dead_letters, pending)``.
    """
    totals = ReliableStats()
    duplicates = 0
    dead_letters = 0
    pending = 0
    for name in network.nodes():
        node = network.node(name)
        node.reliable.merge_into(totals)
        duplicates += node.duplicates_suppressed
        dead_letters += len(node.dead_letters)
        pending += node.reliable_pending()
    delivery = {
        kind: {
            "sent": totals.sent.get(kind, 0),
            "acked": totals.acked.get(kind, 0),
            "dead": totals.dead.get(kind, 0),
            "success": totals.delivery_success(kind),
        }
        for kind in totals.kinds()
    }
    return delivery, totals, duplicates, dead_letters, pending


def availability_from_downtime(
    downtime: dict[str, list[tuple[float, Optional[float]]]],
    nodes: list[str],
    horizon_s: float,
) -> tuple[dict[str, float], Optional[float], int, int]:
    """Compute per-node availability and MTTR from outage intervals.

    Intervals may be open (``end`` is ``None``) or extend past the
    horizon (the recovery fired during the post-horizon queue drain);
    both are **right-censored**: their downtime up to the horizon counts
    against availability, but no within-horizon repair was observed, so
    they are excluded from the MTTR mean and the closed-outage count and
    reported separately.

    Returns ``(availability, mttr_s, n_outages, n_censored)``; nodes
    without outages report availability 1.0.
    """
    availability: dict[str, float] = {}
    repairs: list[float] = []
    n_censored = 0
    for node in nodes:
        down = 0.0
        for start, end in downtime.get(node, []):
            start = min(start, horizon_s)
            if end is None or end >= horizon_s:
                n_censored += 1
                down += horizon_s - start
            else:
                repairs.append(end - start)
                down += end - start
        availability[node] = max(0.0, 1.0 - down / horizon_s) if horizon_s > 0 else 1.0
    mttr = sum(repairs) / len(repairs) if repairs else None
    return availability, mttr, len(repairs), n_censored
