"""Scripted fault plans.

A :class:`FaultPlan` is a deterministic, time-ordered script of fault
events covering the whole habitat stack: bus-level faults (node crash /
restart, link flaps, lossy-channel windows, Earth-link blackouts) that
the :class:`~repro.faults.injector.FaultInjector` replays onto the
discrete-event simulator, and sensing-level faults (beacon outages,
badge battery depletion, SD-card exhaustion) that degrade the day-based
sensing pipeline.  Plans are immutable and hashable, so a plan can live
inside a frozen :class:`~repro.core.config.MissionConfig` and the same
config (including seed) always reproduces the same faulted mission.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import ConfigError
from repro.core.units import DAY

#: Faults the injector replays onto the bus / Earth link.
BUS_ACTIONS = frozenset({
    "crash",          # target: node name; duration_s -> auto-recover
    "recover",        # target: node name (explicit restart)
    "link-down",      # target: "a->b" directed or "a<->b"; duration_s -> heal
    "link-up",        # target: as above (explicit heal)
    "lossy",          # value: loss probability; duration_s -> revert window
    "blackout",       # Earth link dark; duration_s -> restore
})

#: Faults applied to the day-based sensing pipeline.
SENSING_ACTIONS = frozenset({
    "beacon-outage",  # target: "3" or "3,7,12"; duration_s -> back up
    "badge-battery",  # target: badge id; dead from time_s to end of day
    "sdcard-cap",     # target: badge id; value: capacity bytes override
})

#: Faults applied to the execution engine itself (chaos-testing the
#: supervisor): they never change mission *content*, only how the run
#: has to fight to produce it.
EXEC_ACTIONS = frozenset({
    "worker-crash",   # the pool worker computing time_s's day is SIGKILLed
})

#: Faults that corrupt already-recorded badge-day data (chaos-testing
#: the ``repro.quality`` ingest gate).  Each strikes the badge-day of
#: ``target`` containing ``time_s``; the corruption is applied to the
#: assembled dataset, after sensing, the way real damage appears at
#: analysis time.
DATA_ACTIONS = frozenset({
    "data-bitrot",      # value: fraction of frames struck with garbage
    "data-truncate",    # value: fraction of the day that survives
    "data-duplicate",   # value: fraction of the day duplicated + reordered
    "data-stuck",       # value: fraction of the day a sensor reads constant
    "data-clock-skew",  # value: seconds the day's t0 drifts (signed)
})

ACTIONS = BUS_ACTIONS | SENSING_ACTIONS | EXEC_ACTIONS | DATA_ACTIONS


@dataclass(frozen=True)
class FaultEvent:
    """One scripted fault.

    Attributes:
        time_s: absolute mission time of injection (seconds; day ``d``
            starts at ``(d - 1) * DAY``).
        action: one of :data:`ACTIONS`.
        target: action-dependent — node name, ``"a->b"`` / ``"a<->b"``
            link, comma-separated beacon ids, or a badge id.
        duration_s: for window actions, seconds until auto-revert
            (recover / heal / restore / loss reset); ``None`` means the
            fault persists.
        value: numeric parameter (loss probability for ``lossy``,
            capacity bytes for ``sdcard-cap``).
    """

    time_s: float
    action: str
    target: str = ""
    duration_s: float | None = None
    value: float = 0.0

    def validate(self) -> None:
        if self.time_s < 0:
            raise ConfigError("fault time_s must be non-negative")
        if self.action not in ACTIONS:
            raise ConfigError(f"unknown fault action {self.action!r}")
        if self.duration_s is not None and self.duration_s <= 0:
            raise ConfigError("fault duration_s must be positive")
        if self.action == "lossy" and not 0.0 <= self.value < 1.0:
            raise ConfigError("lossy value must be a loss probability in [0, 1)")
        if self.action == "sdcard-cap" and self.value <= 0:
            raise ConfigError("sdcard-cap value must be a positive byte count")
        if self.action in ("crash", "recover", "link-down", "link-up",
                           "beacon-outage", "badge-battery", "sdcard-cap") \
                and not self.target:
            raise ConfigError(f"fault action {self.action!r} needs a target")
        if self.action in DATA_ACTIONS:
            if not self.target:
                raise ConfigError(f"fault action {self.action!r} needs a badge target")
            if self.action in ("data-bitrot", "data-duplicate", "data-stuck") \
                    and not 0.0 < self.value <= 1.0:
                raise ConfigError(f"{self.action} value must be a fraction in (0, 1]")
            if self.action == "data-truncate" and not 0.0 <= self.value < 1.0:
                raise ConfigError("data-truncate value must be a surviving "
                                  "fraction in [0, 1)")
            if self.action == "data-clock-skew" and self.value == 0.0:
                raise ConfigError("data-clock-skew value must be a non-zero "
                                  "seconds offset")

    @property
    def end_s(self) -> float | None:
        """Absolute end of the fault window (``None`` if persistent)."""
        if self.duration_s is None:
            return None
        return self.time_s + self.duration_s

    def link_endpoints(self) -> tuple[str, str, bool]:
        """Parse a link target into ``(src, dst, bidirectional)``."""
        if "<->" in self.target:
            src, dst = self.target.split("<->", 1)
            return src.strip(), dst.strip(), True
        if "->" in self.target:
            src, dst = self.target.split("->", 1)
            return src.strip(), dst.strip(), False
        raise ConfigError(f"link target must be 'a->b' or 'a<->b', got {self.target!r}")

    def beacon_ids(self) -> tuple[int, ...]:
        """Parse a beacon-outage target into beacon indices."""
        try:
            return tuple(int(part) for part in self.target.split(",") if part.strip() != "")
        except ValueError:
            raise ConfigError(f"beacon target must be comma-separated ints, got {self.target!r}") from None

    def badge_id(self) -> int:
        try:
            return int(self.target)
        except ValueError:
            raise ConfigError(f"badge target must be an int, got {self.target!r}") from None


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, time-sorted script of :class:`FaultEvent`\\ s."""

    events: tuple[FaultEvent, ...] = ()

    @classmethod
    def build(cls, *events: FaultEvent) -> "FaultPlan":
        """Create a plan from events in any order (sorted, validated)."""
        plan = cls(events=tuple(sorted(
            events, key=lambda e: (e.time_s, e.action, e.target)
        )))
        plan.validate()
        return plan

    def validate(self) -> None:
        for event in self.events:
            event.validate()

    def merged(self, other: "FaultPlan") -> "FaultPlan":
        """A new plan combining both scripts."""
        return FaultPlan.build(*self.events, *other.events)

    def bus_events(self) -> list[FaultEvent]:
        """Events the simulator-side injector replays, in time order."""
        return [e for e in self.events if e.action in BUS_ACTIONS]

    def sensing_events(self) -> list[FaultEvent]:
        return [e for e in self.events if e.action in SENSING_ACTIONS]

    def exec_events(self) -> list[FaultEvent]:
        """Events aimed at the execution engine (supervisor chaos)."""
        return [e for e in self.events if e.action in EXEC_ACTIONS]

    def data_events(self) -> list[FaultEvent]:
        """Events that corrupt assembled badge-day data, in time order."""
        return [e for e in self.events if e.action in DATA_ACTIONS]

    def data_events_by_badge_day(self) -> dict[tuple[int, int], list[FaultEvent]]:
        """Data-corruption events grouped by the badge-day they strike."""
        out: dict[tuple[int, int], list[FaultEvent]] = {}
        for event in self.data_events():
            key = (event.badge_id(), int(event.time_s // DAY) + 1)
            out.setdefault(key, []).append(event)
        return out

    def worker_crash_days(self) -> frozenset[int]:
        """Mission days whose pool worker an injected crash should kill.

        Each event is consumed by the supervisor once: the first worker
        to pick up that day dies, the retry computes it normally.
        """
        return frozenset(
            int(e.time_s // DAY) + 1
            for e in self.events if e.action == "worker-crash"
        )

    def is_empty(self) -> bool:
        return not self.events

    # -- sensing-fault queries (pure functions of the plan) ---------------

    def dead_beacons_on_day(self, day: int, daytime_start_s: float,
                            daytime_s: float) -> frozenset[int]:
        """Beacons with an outage overlapping ``day``'s daytime window.

        Day granularity is deliberate: the localizer masks whole RSSI
        columns for the day, matching how a dead beacon would be treated
        in post-hoc analysis.
        """
        day_start = (day - 1) * DAY + daytime_start_s
        day_end = day_start + daytime_s
        dead: set[int] = set()
        for event in self.events:
            if event.action != "beacon-outage":
                continue
            end = event.end_s if event.end_s is not None else float("inf")
            if event.time_s < day_end and end > day_start:
                dead.update(event.beacon_ids())
        return frozenset(dead)

    def battery_cut_frame(self, badge_id: int, day: int, daytime_start_s: float,
                          n_frames: int, dt: float) -> int | None:
        """First dead frame of ``badge_id`` on ``day``, or ``None``.

        A ``badge-battery`` event kills recording from its injection
        time through the end of that day (overnight charging restores
        the badge next morning).
        """
        day_start = (day - 1) * DAY + daytime_start_s
        cut: int | None = None
        for event in self.events:
            if event.action != "badge-battery" or event.badge_id() != badge_id:
                continue
            if int(event.time_s // DAY) + 1 != day:
                continue
            frame = min(max(0, int((event.time_s - day_start) / dt)), n_frames)
            cut = frame if cut is None else min(cut, frame)
        return cut if cut is not None and cut < n_frames else None

    def sdcard_caps(self) -> dict[int, float]:
        """Per-badge SD-card capacity overrides declared by the plan."""
        caps: dict[int, float] = {}
        for event in self.events:
            if event.action == "sdcard-cap":
                caps[event.badge_id()] = event.value
        return caps

    def faulted_badges(self) -> frozenset[int]:
        """Badges targeted by any sensing-level fault."""
        out: set[int] = set()
        for event in self.events:
            if event.action in ("badge-battery", "sdcard-cap"):
                out.add(event.badge_id())
        return frozenset(out)
