"""Hydration tracking: the paper's flagship integration example.

"A urine processor assembly combined with an identification system
(e.g., provided by wearable sociometric badges) and smart drinking mugs
... allow for tracking fluid loss and intake to warn astronauts against
dehydration."  Intake events come from smart mugs (kitchen visits),
loss events from the identified urine-processor uses (restroom visits)
plus insensible loss over time; the tracker raises a dehydration alert
when an astronaut's balance dips below threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.engine import Simulator
from repro.core.errors import ConfigError
from repro.support.alerts import Alert
from repro.support.bus import Message, Node

#: Baseline insensible fluid loss (breath, skin), ml per hour.
INSENSIBLE_LOSS_ML_H = 60.0
#: Typical smart-mug intake event, ml.
MUG_SIP_ML = 220.0
#: Typical urine-processor event, ml.
URINE_EVENT_ML = 280.0


@dataclass(frozen=True)
class FluidEvent:
    """One identified intake or loss event."""

    time_s: float
    astro_id: str
    kind: str       # "intake" | "urine"
    volume_ml: float


@dataclass
class FluidState:
    """Running balance of one astronaut."""

    balance_ml: float = 0.0
    last_update_s: float = 0.0
    events: int = 0


class HydrationTracker(Node):
    """Integrates mug, urine-processor, and badge-identity streams."""

    def __init__(
        self,
        name: str,
        sim: Simulator,
        astronauts: list[str],
        deficit_alert_ml: float = -600.0,
        notify: list[str] | None = None,
    ):
        super().__init__(name, sim)
        if deficit_alert_ml >= 0:
            raise ConfigError("deficit_alert_ml must be negative")
        self.deficit_alert_ml = deficit_alert_ml
        self.notify = list(notify or [])
        self.states: dict[str, FluidState] = {a: FluidState() for a in astronauts}
        self.alerts: list[Alert] = []
        self._alerted: set[str] = set()

    # -- event intake -------------------------------------------------------

    def handle_fluid(self, message: Message) -> None:
        event: FluidEvent = message.payload
        self.ingest(event)

    def ingest(self, event: FluidEvent) -> None:
        """Apply one identified fluid event."""
        state = self.states.get(event.astro_id)
        if state is None:
            return  # unidentified user (badge not worn) -- can't attribute
        self._apply_insensible(event.astro_id, event.time_s)
        if event.kind == "intake":
            state.balance_ml += event.volume_ml
        elif event.kind == "urine":
            state.balance_ml -= event.volume_ml
        else:
            raise ConfigError(f"unknown fluid event kind {event.kind!r}")
        state.events += 1
        self._check(event.astro_id, event.time_s)

    def advance_to(self, time_s: float) -> None:
        """Account insensible loss up to ``time_s`` for everyone."""
        for astro in self.states:
            self._apply_insensible(astro, time_s)
            self._check(astro, time_s)

    # -- internals ------------------------------------------------------------

    def _apply_insensible(self, astro_id: str, time_s: float) -> None:
        state = self.states[astro_id]
        elapsed_h = max(time_s - state.last_update_s, 0.0) / 3600.0
        state.balance_ml -= INSENSIBLE_LOSS_ML_H * elapsed_h
        state.last_update_s = max(state.last_update_s, time_s)

    def _check(self, astro_id: str, time_s: float) -> None:
        state = self.states[astro_id]
        if state.balance_ml < self.deficit_alert_ml and astro_id not in self._alerted:
            self._alerted.add(astro_id)
            alert = Alert(
                time_s=time_s, severity="warning", kind="dehydration",
                subject=astro_id,
                detail=f"fluid balance {state.balance_ml:.0f} ml below threshold",
            )
            self.alerts.append(alert)
            for destination in self.notify:
                self.send(destination, "alert", alert)
        elif state.balance_ml >= 0 and astro_id in self._alerted:
            self._alerted.discard(astro_id)  # rehydrated; may alert again

    def balance(self, astro_id: str) -> float:
        """Current fluid balance of an astronaut, ml."""
        return self.states[astro_id].balance_ml


def fluid_events_from_truth(truth, day: int) -> list[FluidEvent]:
    """Derive mug/urine events from ground-truth kitchen/restroom visits.

    Each sufficiently long kitchen visit triggers a mug event; each
    restroom visit an identified urine-processor event.
    """
    import numpy as np

    events: list[FluidEvent] = []
    plan = truth.plan
    kitchen = plan.index_of("kitchen")
    restroom = plan.index_of("restroom")
    for astro in truth.roster.ids:
        trace = truth.trace(astro, day)
        room = trace.room
        for target, kind, volume in (
            (kitchen, "intake", MUG_SIP_ML),
            (restroom, "urine", URINE_EVENT_ML),
        ):
            inside = room == target
            if not inside.any():
                continue
            padded = np.concatenate([[False], inside, [False]])
            edges = np.flatnonzero(padded[1:] != padded[:-1])
            for start, end in zip(edges[0::2], edges[1::2]):
                if (end - start) * trace.dt >= 30.0:
                    events.append(FluidEvent(
                        time_s=trace.t0 + float(start) * trace.dt,
                        astro_id=astro, kind=kind, volume_ml=volume,
                    ))
    events.sort(key=lambda e: e.time_s)
    return events
