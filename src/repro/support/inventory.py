"""Spares provisioning: backups vs cargo mass (paper Section VI-B).

"There is still one problem that can be solved only with significant
uncertainty: finding a balance between a spaceship overloaded with
devices of same functionalities and a sufficient number of backups."
ICAres-1 itself shipped one backup badge per astronaut and chose *not*
to replicate the reference badge.

With device failures modeled as a Poisson process, the number of spares
needed for a target mission-long availability has a closed form; this
module computes it and the resulting launch-mass bill (the paper cites
"thousands of dollars per kg of payload").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.errors import ConfigError


@dataclass(frozen=True)
class DeviceSpec:
    """One device class carried to the habitat."""

    name: str
    units_in_service: int
    failure_rate_per_day: float  # per unit
    mass_kg: float

    def __post_init__(self) -> None:
        if self.units_in_service < 1:
            raise ConfigError("units_in_service must be >= 1")
        if self.failure_rate_per_day < 0:
            raise ConfigError("failure rate must be non-negative")
        if self.mass_kg <= 0:
            raise ConfigError("mass must be positive")


def survival_probability(spec: DeviceSpec, mission_days: float, spares: int) -> float:
    """P(the fleet never runs short over the mission) with ``spares``.

    Failures across the in-service units form a Poisson process with
    rate ``units * lambda``; the fleet survives iff the total number of
    failures does not exceed the spare count.
    """
    if mission_days < 0 or spares < 0:
        raise ConfigError("mission_days and spares must be non-negative")
    mean = spec.units_in_service * spec.failure_rate_per_day * mission_days
    # P(N <= spares) for N ~ Poisson(mean).
    term = math.exp(-mean)
    total = term
    for k in range(1, spares + 1):
        term *= mean / k
        total += term
    return min(total, 1.0)


def spares_needed(
    spec: DeviceSpec, mission_days: float, target_availability: float = 0.99
) -> int:
    """Fewest spares meeting the availability target."""
    if not 0.0 < target_availability < 1.0:
        raise ConfigError("target_availability must be in (0, 1)")
    spares = 0
    while survival_probability(spec, mission_days, spares) < target_availability:
        spares += 1
        if spares > 10_000:
            raise ConfigError("availability target unreachable (check the rates)")
    return spares


@dataclass(frozen=True)
class ProvisioningLine:
    """One row of the cargo manifest."""

    device: str
    spares: int
    availability: float
    spare_mass_kg: float


def provision_manifest(
    specs: list[DeviceSpec],
    mission_days: float,
    target_availability: float = 0.99,
    launch_cost_per_kg: float = 5000.0,
) -> tuple[list[ProvisioningLine], float]:
    """Spares manifest and total launch cost of the spare mass.

    Returns ``(lines, total_cost)``; each line carries the achieved
    availability (>= target) and the spare mass it costs.
    """
    lines: list[ProvisioningLine] = []
    total_mass = 0.0
    for spec in specs:
        spares = spares_needed(spec, mission_days, target_availability)
        mass = spares * spec.mass_kg
        total_mass += mass
        lines.append(
            ProvisioningLine(
                device=spec.name,
                spares=spares,
                availability=survival_probability(spec, mission_days, spares),
                spare_mass_kg=mass,
            )
        )
    return lines, total_mass * launch_cost_per_kg


#: The ICAres-1 sensing fleet, approximately (badge 111 g; beacons light).
ICARES_FLEET = [
    DeviceSpec(name="sociometric badge", units_in_service=6,
               failure_rate_per_day=0.01, mass_kg=0.111),
    DeviceSpec(name="reference badge", units_in_service=1,
               failure_rate_per_day=0.005, mass_kg=0.111),
    DeviceSpec(name="BLE beacon", units_in_service=27,
               failure_rate_per_day=0.001, mass_kg=0.04),
]
