"""Task-rescheduling advice from sociometric indicators.

"What exemplifies this idea is a mechanism detecting fatigue or
distraction among the crew and suggesting how to reschedule the tasks."
The advisor consumes the day's stream windows per badge, scores each
crew member's fatigue/social load, and proposes concrete schedule moves
(pull a break forward, swap a demanding block to a fresher crew member,
pair the most passive astronaut into a group task).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import ConfigError
from repro.support.stream import StreamWindow


@dataclass(frozen=True)
class CrewLoad:
    """One crew member's current condition, per the sensors."""

    badge_id: int
    fatigue: float      # 0 fresh .. 1 exhausted (low motion for hours)
    isolation: float    # 0 social .. 1 isolated (no conversation nearby)
    wear: float         # fraction of recent time actually worn


@dataclass(frozen=True)
class Advice:
    """One rescheduling suggestion."""

    kind: str           # "advance-break" | "swap-task" | "pair-up" | "check-in"
    badge_id: int
    detail: str
    urgency: float      # 0 .. 1


@dataclass
class ReschedulingAdvisor:
    """Turns stream windows into schedule advice.

    Thresholds are deliberately conservative: the paper warns that a
    support system must not become one more chore, so advice fires only
    on sustained signals.
    """

    window_history: int = 8
    fatigue_accel: float = 0.18
    isolation_speech: float = 0.05
    min_wear: float = 0.5
    _windows: dict[int, list[StreamWindow]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.window_history < 2:
            raise ConfigError("window_history must be >= 2")

    def observe(self, window: StreamWindow) -> None:
        """Feed one stream window."""
        history = self._windows.setdefault(window.badge_id, [])
        history.append(window)
        del history[: -self.window_history]

    def loads(self) -> list[CrewLoad]:
        """Current per-crew condition scores."""
        out: list[CrewLoad] = []
        for badge_id, history in sorted(self._windows.items()):
            wear = float(np.mean([w.worn_fraction for w in history]))
            worn = [w for w in history if w.worn_fraction > 0.5]
            if not worn:
                out.append(CrewLoad(badge_id=badge_id, fatigue=0.0,
                                    isolation=0.0, wear=wear))
                continue
            accel = float(np.mean([w.mean_accel for w in worn]))
            speech = float(np.mean([w.speech_fraction for w in worn]))
            fatigue = float(np.clip(1.0 - accel / (2 * self.fatigue_accel), 0.0, 1.0))
            isolation = float(np.clip(1.0 - speech / (2 * self.isolation_speech), 0.0, 1.0))
            out.append(CrewLoad(badge_id=badge_id, fatigue=fatigue,
                                isolation=isolation, wear=wear))
        return out

    def advise(self) -> list[Advice]:
        """Current advice, most urgent first."""
        advice: list[Advice] = []
        loads = [l for l in self.loads() if len(self._windows[l.badge_id]) >= 2]
        if not loads:
            return advice
        for load in loads:
            if load.wear < self.min_wear:
                advice.append(Advice(
                    kind="check-in", badge_id=load.badge_id, urgency=0.3,
                    detail="badge mostly off the neck; data is blind here",
                ))
                continue
            if load.fatigue > 0.75:
                advice.append(Advice(
                    kind="advance-break", badge_id=load.badge_id,
                    urgency=load.fatigue,
                    detail="sustained low activity; pull the next break forward",
                ))
            if load.isolation > 0.75:
                advice.append(Advice(
                    kind="pair-up", badge_id=load.badge_id,
                    urgency=load.isolation * 0.8,
                    detail="hours without conversation; pair into a group task",
                ))
        # If one member is far more fatigued than the freshest, suggest
        # swapping the demanding block.
        scored = sorted(loads, key=lambda l: l.fatigue)
        if len(scored) >= 2 and scored[-1].fatigue - scored[0].fatigue > 0.5:
            tired, fresh = scored[-1], scored[0]
            advice.append(Advice(
                kind="swap-task", badge_id=tired.badge_id, urgency=0.6,
                detail=(f"swap the demanding block with badge-{fresh.badge_id} "
                        f"(fatigue {tired.fatigue:.2f} vs {fresh.fatigue:.2f})"),
            ))
        advice.sort(key=lambda a: -a.urgency)
        return advice
