"""The Earth link and mission control.

Communication with Earth "involves a high latency and is occasionally
impossible"; ICAres-1 emulated a 20-minute one-way delay, and on day 12
"delayed instructions from the mission control contradicted the course
of action already taken by the crew".  :class:`EarthLink` models the
delayed (and partitionable) channel; :class:`MissionControl` issues
commands; the habitat-side agent detects contradictions between arriving
commands and decisions the crew has already made autonomously.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.engine import Simulator
from repro.core.errors import ConfigError
from repro.support.bus import Message, Network, Node

#: The emulated one-way Earth-Mars latency (seconds).
DEFAULT_ONE_WAY_DELAY_S = 20 * 60.0


@dataclass(frozen=True)
class Command:
    """A mission-control instruction about a named decision topic."""

    command_id: int
    topic: str
    action: str
    issued_at: float


@dataclass(frozen=True)
class Decision:
    """A decision taken on-site by the crew/support system."""

    topic: str
    action: str
    decided_at: float


@dataclass(frozen=True)
class Contradiction:
    """A delayed command that conflicts with an earlier local decision."""

    command: Command
    decision: Decision
    detected_at: float

    @property
    def staleness_s(self) -> float:
        """How stale the command was when it arrived."""
        return self.detected_at - self.command.issued_at


class MissionControl(Node):
    """The Earth-side supervisor."""

    def __init__(self, name: str, sim: Simulator, habitat_agent: str):
        super().__init__(name, sim)
        self.habitat_agent = habitat_agent
        self._next_id = 0
        self.sent_commands: list[Command] = []
        self.acknowledged: set[int] = set()
        self.reprimands: list[Contradiction] = []

    def issue(self, topic: str, action: str) -> Command:
        """Send a command to the habitat (subject to the link delay)."""
        command = Command(self._next_id, topic, action, issued_at=self.sim.now)
        self._next_id += 1
        self.sent_commands.append(command)
        self.send(self.habitat_agent, "command", command)
        return command

    def handle_ack(self, message: Message) -> None:
        self.acknowledged.add(message.payload)

    def handle_contradiction(self, message: Message) -> None:
        """The habitat reports a conflict; mission control reprimands.

        (On day 12 of ICAres-1 the consequence was "surging stress
        levels of the participants".)
        """
        contradiction: Contradiction = message.payload
        self.reprimands.append(contradiction)
        self.send(self.habitat_agent, "reprimand", contradiction.command.command_id)


class HabitatAgent(Node):
    """The habitat-side endpoint of the Earth link.

    Records local decisions and checks arriving commands against them;
    conflicts are reported back to Earth (and surfaced locally).
    """

    def __init__(self, name: str, sim: Simulator, earth: str):
        super().__init__(name, sim)
        self.earth = earth
        self.decisions: dict[str, Decision] = {}
        self.applied_commands: list[Command] = []
        self.contradictions: list[Contradiction] = []
        self.reprimands_received: int = 0
        self._seen_command_ids: set[int] = set()
        self.duplicate_commands: int = 0

    def decide_locally(self, topic: str, action: str) -> Decision:
        """The crew acts autonomously on a topic (cannot wait 40 min RTT)."""
        decision = Decision(topic=topic, action=action, decided_at=self.sim.now)
        self.decisions[topic] = decision
        return decision

    def handle_command(self, message: Message) -> None:
        command: Command = message.payload
        # Always (re-)acknowledge, but apply at most once: a command
        # retried over the lossy Earth link must not be re-applied or
        # reported as a contradiction twice.
        self.send(self.earth, "ack", command.command_id)
        if command.command_id in self._seen_command_ids:
            self.duplicate_commands += 1
            return
        self._seen_command_ids.add(command.command_id)
        local = self.decisions.get(command.topic)
        if local is not None and local.action != command.action and local.decided_at < self.sim.now:
            contradiction = Contradiction(
                command=command, decision=local, detected_at=self.sim.now
            )
            self.contradictions.append(contradiction)
            self.send(self.earth, "contradiction", contradiction)
        else:
            self.applied_commands.append(command)
            self.decisions[command.topic] = Decision(
                topic=command.topic, action=command.action, decided_at=self.sim.now
            )

    def handle_reprimand(self, message: Message) -> None:
        self.reprimands_received += 1


@dataclass
class EarthLink:
    """Wires a mission control and a habitat agent over a delayed link."""

    network: Network
    mission_control: MissionControl
    habitat_agent: HabitatAgent
    one_way_delay_s: float = DEFAULT_ONE_WAY_DELAY_S

    @classmethod
    def build(
        cls,
        network: Network,
        sim: Simulator,
        one_way_delay_s: float = DEFAULT_ONE_WAY_DELAY_S,
    ) -> "EarthLink":
        """Create, register, and delay-wire the two endpoints."""
        if one_way_delay_s < 0:
            raise ConfigError("delay must be non-negative")
        mc = MissionControl("earth", sim, habitat_agent="habitat")
        agent = HabitatAgent("habitat", sim, earth="earth")
        network.register(mc)
        network.register(agent)
        network.set_link_latency("earth", "habitat", one_way_delay_s)
        network.set_link_latency("habitat", "earth", one_way_delay_s)
        return cls(network=network, mission_control=mc, habitat_agent=agent,
                   one_way_delay_s=one_way_delay_s)

    def blackout(self) -> None:
        """Communication "is occasionally impossible"."""
        self.network.partition("earth", "habitat")

    def restore(self) -> None:
        self.network.heal("earth", "habitat")
