"""The habitat mission support system (paper Section VI).

A working prototype of the envisioned distributed support system: a
message bus over habitat links, streaming sensor-analysis units,
an alert engine (fatigue, passivity, dehydration), a 20-minute-delayed
mission-control link with contradiction detection (the day-12 incident),
primary/backup unit replication with heartbeat failover (what the
non-replicated reference badge lacked), multi-party authorization for
system changes, and privacy controls the crew can invoke.
"""

from repro.support.alerts import Alert, AlertEngine
from repro.support.authorization import AuthorizationService, Proposal
from repro.support.bus import Message, Network, Node
from repro.support.hydration import HydrationTracker
from repro.support.mission_control import EarthLink, MissionControl
from repro.support.privacy import PrivacyManager
from repro.support.reliable import CircuitBreaker, DeadLetter, ReliableStats
from repro.support.replication import ReplicatedService, Replica
from repro.support.scheduling import Advice, CrewLoad, ReschedulingAdvisor
from repro.support.stream import SensorStream, StreamWindow

__all__ = [
    "Advice",
    "Alert",
    "AlertEngine",
    "AuthorizationService",
    "CircuitBreaker",
    "CrewLoad",
    "DeadLetter",
    "EarthLink",
    "HydrationTracker",
    "Message",
    "MissionControl",
    "Network",
    "Node",
    "PrivacyManager",
    "Proposal",
    "ReliableStats",
    "Replica",
    "ReplicatedService",
    "ReschedulingAdvisor",
    "SensorStream",
    "StreamWindow",
]
