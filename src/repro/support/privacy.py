"""Crew privacy controls over the sensing system.

"The astronauts may ... temporarily disable some functionalities in
privacy-sensitive situations.  The habitat system, which is inherently
ubiquitous and intruding, could be then perceived as more acceptable by
the crew themselves."  The privacy manager grants per-sensor suppression
windows, applies them to data streams, and keeps an audit trail (because
accountability is part of the trust story too).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import ConfigError
from repro.core.intervals import IntervalSet

#: Sensors a crew member may suppress.
SUPPRESSIBLE = ("microphone", "localization", "proximity")

#: Longest single suppression window the policy allows.
MAX_WINDOW_S = 2 * 3600.0


@dataclass(frozen=True)
class SuppressionWindow:
    """One granted privacy window."""

    astro_id: str
    sensor: str
    t0: float
    t1: float
    reason: str = ""


@dataclass
class PrivacyManager:
    """Grants suppression windows and redacts data accordingly."""

    windows: list[SuppressionWindow] = field(default_factory=list)
    audit: list[str] = field(default_factory=list)
    #: Daily per-astronaut suppression budget, seconds.
    daily_budget_s: float = 3 * 3600.0

    def request(
        self, astro_id: str, sensor: str, t0: float, t1: float, reason: str = ""
    ) -> SuppressionWindow:
        """Grant a suppression window (policy-checked)."""
        if sensor not in SUPPRESSIBLE:
            raise ConfigError(f"sensor {sensor!r} cannot be suppressed")
        if t1 <= t0:
            raise ConfigError("empty suppression window")
        if t1 - t0 > MAX_WINDOW_S:
            raise ConfigError("suppression window exceeds the policy maximum")
        used = self.suppressed_set(astro_id, sensor).total()
        if used + (t1 - t0) > self.daily_budget_s:
            raise ConfigError("daily suppression budget exhausted")
        window = SuppressionWindow(astro_id=astro_id, sensor=sensor, t0=t0, t1=t1,
                                   reason=reason)
        self.windows.append(window)
        self.audit.append(
            f"grant {sensor} suppression to {astro_id} [{t0:.0f}, {t1:.0f}) ({reason})"
        )
        return window

    def suppressed_set(self, astro_id: str, sensor: str) -> IntervalSet:
        """All granted windows of one astronaut/sensor as an interval set."""
        return IntervalSet(
            (w.t0, w.t1)
            for w in self.windows
            if w.astro_id == astro_id and w.sensor == sensor
        )

    def redact(
        self,
        astro_id: str,
        sensor: str,
        values: np.ndarray,
        t0: float,
        dt: float,
        fill: float = np.nan,
    ) -> np.ndarray:
        """Return ``values`` with suppressed frames replaced by ``fill``."""
        suppressed = self.suppressed_set(astro_id, sensor)
        if not suppressed:
            return values
        mask = suppressed.to_mask(values.shape[0], t0=t0, dt=dt)
        out = np.array(values, copy=True, dtype=np.float64)
        out[mask] = fill
        self.audit.append(
            f"redact {int(mask.sum())} frames of {sensor} for {astro_id}"
        )
        return out
