"""The habitat message bus.

Support-system units (stream processors, the alert engine, the Earth
link, replicas) are :class:`Node` instances exchanging :class:`Message`
objects over a :class:`Network` that models per-link latency, loss, and
injected partitions — the substrate every Section-VI scenario runs on.

Accounting is exact: every :meth:`Network.send` increments ``sent``, and
each message ends up in exactly one of ``delivered`` or ``dropped``
(whatever the drop reason — crashed source, cut link, channel loss,
crashed/unknown destination), so ``sent == delivered + dropped`` holds
whenever no message is still in flight.  With :mod:`repro.obs` enabled
the same accounting is exported per message ``kind`` and drop reason,
plus a per-kind delivery-latency histogram and structured logs for every
fault-injection action.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.core.engine import Event, Simulator
from repro.core.errors import ConfigError, ProtocolError
from repro.obs import _state as _obs
from repro.obs import metrics as _metrics
from repro.obs.logging import get_logger
from repro.support.reliable import (
    ACK_KIND,
    DEFAULT_COOLDOWN_TIMEOUTS,
    DEFAULT_FAILURE_THRESHOLD,
    DEFAULT_MAX_ATTEMPTS,
    CircuitBreaker,
    DeadLetter,
    PendingReliable,
    ReliableStats,
)

log = get_logger("repro.support.bus")


@dataclass(frozen=True)
class Message:
    """One bus message.

    ``msg_id`` is set only on reliable traffic (see
    :meth:`Node.send_reliable`): the receiver acknowledges it and uses it
    to deduplicate retransmissions; plain fire-and-forget messages carry
    ``None``.
    """

    src: str
    dst: str
    kind: str
    payload: Any = None
    msg_id: Optional[str] = None

    def __repr__(self) -> str:
        rel = f" id={self.msg_id}" if self.msg_id is not None else ""
        return f"<Message {self.src}->{self.dst} {self.kind}{rel}>"


class Network:
    """Point-to-point message delivery with latency, loss, partitions."""

    def __init__(
        self,
        sim: Simulator,
        default_latency_s: float = 0.02,
        loss_prob: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ):
        if default_latency_s < 0:
            raise ConfigError("latency must be non-negative")
        if not 0.0 <= loss_prob < 1.0:
            raise ConfigError("loss_prob must be in [0, 1)")
        self.sim = sim
        self.default_latency_s = default_latency_s
        self.loss_prob = loss_prob
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._nodes: dict[str, "Node"] = {}
        self._link_latency: dict[tuple[str, str], float] = {}
        self._down_links: set[tuple[str, str]] = set()
        self._down_nodes: set[str] = set()
        self.sent = 0
        self.delivered = 0
        self.dropped = 0

    # -- topology -------------------------------------------------------

    def register(self, node: "Node") -> None:
        """Attach a node to the bus (names must be unique)."""
        if node.name in self._nodes:
            raise ConfigError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node
        node.network = self

    def node(self, name: str) -> "Node":
        try:
            return self._nodes[name]
        except KeyError:
            raise ProtocolError(f"no node named {name!r}") from None

    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def set_link_latency(self, src: str, dst: str, latency_s: float) -> None:
        """Override latency for one directed link (e.g. the Earth link)."""
        if latency_s < 0:
            raise ConfigError("latency must be non-negative")
        self._link_latency[(src, dst)] = latency_s

    def latency(self, src: str, dst: str) -> float:
        """Effective one-way latency of a directed link."""
        return self._link_latency.get((src, dst), self.default_latency_s)

    def set_loss_prob(self, loss_prob: float) -> None:
        """Change the channel loss probability (lossy-window injection)."""
        if not 0.0 <= loss_prob < 1.0:
            raise ConfigError("loss_prob must be in [0, 1)")
        self.loss_prob = loss_prob
        log.info("loss-prob-set", loss_prob=loss_prob, sim_time=self.sim.now)

    # -- failure injection ------------------------------------------------

    def partition(self, src: str, dst: str, bidirectional: bool = True) -> None:
        """Cut a link."""
        self._down_links.add((src, dst))
        if bidirectional:
            self._down_links.add((dst, src))
        log.warning("link-partitioned", src=src, dst=dst,
                    bidirectional=bidirectional, sim_time=self.sim.now)

    def heal(self, src: str, dst: str, bidirectional: bool = True) -> None:
        """Restore a cut link."""
        self._down_links.discard((src, dst))
        if bidirectional:
            self._down_links.discard((dst, src))
        log.info("link-healed", src=src, dst=dst,
                 bidirectional=bidirectional, sim_time=self.sim.now)

    def crash(self, name: str) -> None:
        """Crash a node: it stops receiving (and should stop sending)."""
        node = self.node(name)
        self._down_nodes.add(name)
        node.crashed = True
        log.warning("node-crashed", node=name, sim_time=self.sim.now)
        node.on_crash()

    def is_down(self, name: str) -> bool:
        """Whether a node is currently crashed."""
        return name in self._down_nodes

    def recover(self, name: str) -> None:
        """Recover a crashed node.

        The node's :meth:`Node.on_recover` hook runs after the crashed
        flag clears, so stateful nodes can reset wall clocks (heartbeat
        staleness!) and restart their periodic work.
        """
        node = self.node(name)
        self._down_nodes.discard(name)
        node.crashed = False
        log.info("node-recovered", node=name, sim_time=self.sim.now)
        node.on_recover()

    # -- delivery ---------------------------------------------------------

    def _drop(self, message: Message, reason: str) -> None:
        """Count (and, with telemetry on, export and log) one dropped message."""
        self.dropped += 1
        if _obs.enabled:
            _metrics.counter(
                "bus.dropped", "messages dropped, by kind and reason"
            ).inc(kind=message.kind, reason=reason)
            log.debug("message-dropped", src=message.src, dst=message.dst,
                      kind=message.kind, reason=reason, sim_time=self.sim.now)

    def send(self, message: Message) -> None:
        """Queue a message for delivery (may be lost or blocked)."""
        self.sent += 1
        if _obs.enabled:
            _metrics.counter(
                "bus.sent", "messages handed to the bus, by kind"
            ).inc(kind=message.kind)
        if message.src in self._down_nodes:
            # A crashed node cannot transmit; the attempt still counts so
            # bus accounting stays exact across all drop reasons.
            self._drop(message, "src-crashed")
            return
        if (message.src, message.dst) in self._down_links:
            self._drop(message, "partitioned")
            return
        if self.loss_prob > 0 and self.rng.random() < self.loss_prob:
            self._drop(message, "loss")
            return
        latency = self._link_latency.get((message.src, message.dst), self.default_latency_s)
        self.sim.schedule(latency, self._deliver, message, latency)

    def broadcast(self, src: str, kind: str, payload: Any = None) -> None:
        """Send to every other registered node."""
        for name in self._nodes:
            if name != src:
                self.send(Message(src=src, dst=name, kind=kind, payload=payload))

    def _deliver(self, message: Message, latency: float = 0.0) -> None:
        if message.dst in self._down_nodes:
            self._drop(message, "dst-crashed")
            return
        node = self._nodes.get(message.dst)
        if node is None:
            self._drop(message, "no-such-node")
            return
        self.delivered += 1
        if _obs.enabled:
            _metrics.counter(
                "bus.delivered", "messages delivered, by kind"
            ).inc(kind=message.kind)
            _metrics.histogram(
                "bus.latency_s", "delivery latency seconds, by kind"
            ).observe(latency, kind=message.kind)
        node.on_message(message)

    def in_flight(self) -> int:
        """Messages queued on the simulator but not yet delivered/dropped."""
        return self.sent - self.delivered - self.dropped


class PeriodicTask:
    """Cancellable handle returned by :meth:`Node.every`."""

    __slots__ = ("cancelled", "_event")

    def __init__(self) -> None:
        self.cancelled = False
        self._event: Optional[Event] = None

    def cancel(self) -> None:
        """Stop the periodic callback.  Idempotent."""
        self.cancelled = True
        if self._event is not None:
            self._event.cancel()
            self._event = None


class Node:
    """Base class for support-system units.

    Besides fire-and-forget :meth:`send`, every node speaks the reliable
    protocol: :meth:`send_reliable` retries unacknowledged messages under
    exponential backoff with jitter until acked or dead-lettered, and the
    receive path acknowledges and deduplicates reliable messages before
    dispatch, so ``handle_<kind>`` methods stay idempotent under retry
    without any per-handler bookkeeping.
    """

    def __init__(self, name: str, sim: Simulator):
        self.name = name
        self.sim = sim
        self.network: Optional[Network] = None
        self.crashed = False
        self.inbox_count = 0
        # -- reliable-delivery state --------------------------------------
        self._rel_seq = 0
        self._rel_pending: dict[str, PendingReliable] = {}
        self._rel_seen: set[str] = set()
        self._breakers: dict[str, CircuitBreaker] = {}
        self.dead_letters: list[DeadLetter] = []
        self.duplicates_suppressed = 0
        self.reliable = ReliableStats()

    def send(self, dst: str, kind: str, payload: Any = None) -> None:
        """Send a message over the bus (fire-and-forget)."""
        if self.network is None:
            raise ProtocolError(f"node {self.name!r} is not attached to a network")
        self.network.send(Message(src=self.name, dst=dst, kind=kind, payload=payload))

    # -- reliable delivery ------------------------------------------------

    def send_reliable(
        self,
        dst: str,
        kind: str,
        payload: Any = None,
        *,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        ack_timeout_s: Optional[float] = None,
        backoff_base_s: Optional[float] = None,
        use_breaker: bool = True,
    ) -> str:
        """Send with at-least-once delivery; returns the message id.

        The message is retransmitted on ack timeout with exponential
        backoff and jitter until acknowledged; after ``max_attempts`` it
        is appended to :attr:`dead_letters` — a reliable message is
        therefore *never* silently lost.  The receiver dedups by message
        id, so the remote handler runs at most once.  When the
        per-destination circuit breaker is open (the destination kept
        timing out), the send dead-letters immediately instead of
        queueing retries.

        Args:
            dst: destination node name.
            kind: message kind (dispatched as ``handle_<kind>`` remotely).
            payload: message payload.
            max_attempts: transmissions before dead-lettering.
            ack_timeout_s: ack wait per attempt; defaults to the link
                round-trip time plus slack.
            backoff_base_s: first retry backoff; defaults to the ack
                timeout.
            use_breaker: consult the per-destination circuit breaker.
        """
        if self.network is None:
            raise ProtocolError(f"node {self.name!r} is not attached to a network")
        if max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")
        now = self.sim.now
        if ack_timeout_s is None:
            rtt = self.network.latency(self.name, dst) + self.network.latency(dst, self.name)
            ack_timeout_s = rtt + 4 * self.network.default_latency_s + 0.1
        if backoff_base_s is None:
            backoff_base_s = ack_timeout_s
        msg_id = f"{self.name}#{self._rel_seq}"
        self._rel_seq += 1
        self.reliable.record_sent(kind)
        if _obs.enabled:
            _metrics.counter(
                "bus.reliable.sent", "reliable sends, by kind"
            ).inc(kind=kind)
        breaker = self._breakers.get(dst)
        if use_breaker and breaker is not None and not breaker.allow(now):
            self._dead_letter(
                PendingReliable(
                    msg_id=msg_id, dst=dst, kind=kind, payload=payload,
                    max_attempts=max_attempts, ack_timeout_s=ack_timeout_s,
                    backoff_base_s=backoff_base_s, first_sent_s=now,
                ),
                reason="circuit-open",
            )
            return msg_id
        pending = PendingReliable(
            msg_id=msg_id, dst=dst, kind=kind, payload=payload,
            max_attempts=max_attempts, ack_timeout_s=ack_timeout_s,
            backoff_base_s=backoff_base_s, first_sent_s=now,
        )
        self._rel_pending[msg_id] = pending
        self._transmit(pending)
        return msg_id

    def requeue_dead_letters(
        self,
        *,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    ) -> int:
        """Re-send abandoned reliable messages, oldest first.

        Drains the dead-letter queue in FIFO (dead-lettering) order and
        re-enters each message into the reliable path **with its
        original message id** — if the earlier failure lost only the
        *ack* (the receiver did handle the message), the receiver dedups
        the requeue instead of running the handler twice, preserving
        exactly-once dispatch across the requeue.  Messages whose
        destination breaker still refuses traffic (open and cooling
        down) stay in the queue for a later drain; the standard drain
        pattern is to call this after a blackout lifts and the breaker's
        half-open probe can succeed.

        Returns the number of messages re-entered into the reliable
        path.  Each counts as a fresh reliable send, so per-kind
        accounting keeps its invariant ``sent == acked + dead`` once the
        bus drains.
        """
        if self.network is None:
            raise ProtocolError(f"node {self.name!r} is not attached to a network")
        if max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")
        now = self.sim.now
        letters, self.dead_letters = self.dead_letters, []
        requeued = 0
        for letter in letters:
            breaker = self._breakers.get(letter.dst)
            if breaker is not None and not breaker.allow(now):
                self.dead_letters.append(letter)
                continue
            rtt = (self.network.latency(self.name, letter.dst)
                   + self.network.latency(letter.dst, self.name))
            ack_timeout_s = rtt + 4 * self.network.default_latency_s + 0.1
            pending = PendingReliable(
                msg_id=letter.msg_id, dst=letter.dst, kind=letter.kind,
                payload=letter.payload, max_attempts=max_attempts,
                ack_timeout_s=ack_timeout_s, backoff_base_s=ack_timeout_s,
                first_sent_s=now,
            )
            self._rel_pending[letter.msg_id] = pending
            self.reliable.record_sent(letter.kind)
            requeued += 1
            if _obs.enabled:
                _metrics.counter(
                    "bus.reliable.requeued", "dead letters re-sent, by kind"
                ).inc(kind=letter.kind)
            self._transmit(pending)
        if requeued:
            log.info("dead-letters-requeued", node=self.name, requeued=requeued,
                     remaining=len(self.dead_letters), sim_time=now)
        if _obs.enabled:
            _metrics.gauge(
                "bus.reliable.dlq_depth", "dead-letter queue depth, by node"
            ).set(len(self.dead_letters), node=self.name)
        return requeued

    def configure_breaker(
        self,
        dst: str,
        failure_threshold: int = DEFAULT_FAILURE_THRESHOLD,
        cooldown_s: float = 60.0,
    ) -> CircuitBreaker:
        """Install (or replace) the circuit breaker for one destination."""
        breaker = CircuitBreaker(failure_threshold, cooldown_s)
        self._breakers[dst] = breaker
        return breaker

    def reliable_pending(self) -> int:
        """Reliable messages awaiting an ack or a retry."""
        return len(self._rel_pending)

    def _breaker_for(self, pending: PendingReliable) -> CircuitBreaker:
        breaker = self._breakers.get(pending.dst)
        if breaker is None:
            breaker = self._breakers[pending.dst] = CircuitBreaker(
                DEFAULT_FAILURE_THRESHOLD,
                DEFAULT_COOLDOWN_TIMEOUTS * pending.ack_timeout_s,
            )
        return breaker

    def _transmit(self, pending: PendingReliable) -> None:
        pending.attempts += 1
        if pending.attempts > 1:
            self.reliable.retries += 1
            if _obs.enabled:
                _metrics.counter(
                    "bus.reliable.retries", "reliable retransmissions, by kind"
                ).inc(kind=pending.kind)
        self.network.send(Message(
            src=self.name, dst=pending.dst, kind=pending.kind,
            payload=pending.payload, msg_id=pending.msg_id,
        ))
        pending.timer = self.sim.schedule(
            pending.ack_timeout_s, self._on_ack_timeout, pending.msg_id
        )

    def _on_ack_timeout(self, msg_id: str) -> None:
        pending = self._rel_pending.get(msg_id)
        if pending is None:
            return  # acked in the meantime
        self._breaker_for(pending).record_failure(self.sim.now)
        if pending.attempts >= pending.max_attempts:
            del self._rel_pending[msg_id]
            self._dead_letter(pending, reason="max-attempts")
            return
        jitter = self.network.rng.uniform(0.75, 1.25) if self.network is not None else 1.0
        pending.timer = self.sim.schedule(
            pending.backoff_s(jitter), self._retransmit, msg_id
        )

    def _retransmit(self, msg_id: str) -> None:
        pending = self._rel_pending.get(msg_id)
        if pending is not None:
            self._transmit(pending)

    def _on_ack(self, msg_id: str) -> None:
        pending = self._rel_pending.pop(msg_id, None)
        if pending is None:
            return  # duplicate ack
        if pending.timer is not None:
            pending.timer.cancel()
        self._breaker_for(pending).record_success(self.sim.now)
        self.reliable.record_acked(pending.kind)
        if _obs.enabled:
            _metrics.counter(
                "bus.reliable.acked", "reliable sends acknowledged, by kind"
            ).inc(kind=pending.kind)
            _metrics.histogram(
                "bus.reliable.delivery_s",
                "time from first send to ack, by kind",
            ).observe(self.sim.now - pending.first_sent_s, kind=pending.kind)

    def _dead_letter(self, pending: PendingReliable, reason: str) -> None:
        self.dead_letters.append(DeadLetter(
            msg_id=pending.msg_id, dst=pending.dst, kind=pending.kind,
            payload=pending.payload, attempts=pending.attempts,
            first_sent_s=pending.first_sent_s, dead_at_s=self.sim.now,
            reason=reason,
        ))
        self.reliable.record_dead(pending.kind)
        log.warning("dead-lettered", node=self.name, dst=pending.dst,
                    kind=pending.kind, msg_id=pending.msg_id, reason=reason,
                    attempts=pending.attempts, sim_time=self.sim.now)
        if _obs.enabled:
            _metrics.counter(
                "bus.reliable.dead_lettered",
                "reliable sends abandoned, by kind and reason",
            ).inc(kind=pending.kind, reason=reason)
            _metrics.gauge(
                "bus.reliable.dlq_depth", "dead-letter queue depth, by node"
            ).set(len(self.dead_letters), node=self.name)

    # -- receive path ------------------------------------------------------

    def on_message(self, message: Message) -> None:
        """Handle a delivered message; dispatches to ``handle_<kind>``.

        Reliable messages are acknowledged and deduplicated here, before
        dispatch, so handlers never see a retransmission twice.
        """
        if self.crashed:
            return
        if message.kind == ACK_KIND:
            self._on_ack(message.payload)
            return
        if message.msg_id is not None:
            # Re-ack duplicates too: the retransmission means the sender
            # never saw our first ack.
            self.send(message.src, ACK_KIND, message.msg_id)
            if message.msg_id in self._rel_seen:
                self.duplicates_suppressed += 1
                if _obs.enabled:
                    _metrics.counter(
                        "bus.reliable.duplicates",
                        "retransmissions suppressed by receiver dedup, by kind",
                    ).inc(kind=message.kind)
                return
            self._rel_seen.add(message.msg_id)
        self.inbox_count += 1
        handler = getattr(self, f"handle_{message.kind}", None)
        if handler is None:
            self.handle_default(message)
        else:
            handler(message)

    def handle_default(self, message: Message) -> None:
        """Fallback for unrecognized message kinds (override to log)."""

    # -- lifecycle hooks ---------------------------------------------------

    def on_crash(self) -> None:
        """Called by :meth:`Network.crash` after the node goes down."""

    def on_recover(self) -> None:
        """Called by :meth:`Network.recover` after the node comes back.

        Override to reset any wall-clock-relative state (heartbeat
        staleness trackers!) and restart periodic work — :meth:`every`
        tasks stop rescheduling themselves on crash and do not resume on
        their own.
        """

    def every(self, period_s: float, callback, *args) -> PeriodicTask:
        """Run ``callback`` periodically until cancelled or the node crashes.

        Once ``crashed`` is set the tick stops rescheduling itself, so a
        drained scenario's :meth:`Simulator.run` terminates; cancel the
        returned handle to stop it explicitly.
        """
        task = PeriodicTask()

        def tick() -> None:
            if self.crashed or task.cancelled:
                task._event = None
                return
            callback(*args)
            if not self.crashed and not task.cancelled:
                task._event = self.sim.schedule(period_s, tick)
            else:
                task._event = None

        task._event = self.sim.schedule(period_s, tick)
        return task


@dataclass
class EventLog:
    """Shared append-only log used by tests and scenarios."""

    entries: list[tuple[float, str, str]] = field(default_factory=list)

    def record(self, time_s: float, source: str, text: str) -> None:
        self.entries.append((time_s, source, text))

    def matching(self, substring: str) -> list[tuple[float, str, str]]:
        return [e for e in self.entries if substring in e[2]]
