"""The habitat message bus.

Support-system units (stream processors, the alert engine, the Earth
link, replicas) are :class:`Node` instances exchanging :class:`Message`
objects over a :class:`Network` that models per-link latency, loss, and
injected partitions — the substrate every Section-VI scenario runs on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.core.engine import Simulator
from repro.core.errors import ConfigError, ProtocolError


@dataclass(frozen=True)
class Message:
    """One bus message."""

    src: str
    dst: str
    kind: str
    payload: Any = None

    def __repr__(self) -> str:
        return f"<Message {self.src}->{self.dst} {self.kind}>"


class Network:
    """Point-to-point message delivery with latency, loss, partitions."""

    def __init__(
        self,
        sim: Simulator,
        default_latency_s: float = 0.02,
        loss_prob: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ):
        if default_latency_s < 0:
            raise ConfigError("latency must be non-negative")
        if not 0.0 <= loss_prob < 1.0:
            raise ConfigError("loss_prob must be in [0, 1)")
        self.sim = sim
        self.default_latency_s = default_latency_s
        self.loss_prob = loss_prob
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._nodes: dict[str, "Node"] = {}
        self._link_latency: dict[tuple[str, str], float] = {}
        self._down_links: set[tuple[str, str]] = set()
        self._down_nodes: set[str] = set()
        self.delivered = 0
        self.dropped = 0

    # -- topology -------------------------------------------------------

    def register(self, node: "Node") -> None:
        """Attach a node to the bus (names must be unique)."""
        if node.name in self._nodes:
            raise ConfigError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node
        node.network = self

    def node(self, name: str) -> "Node":
        try:
            return self._nodes[name]
        except KeyError:
            raise ProtocolError(f"no node named {name!r}") from None

    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def set_link_latency(self, src: str, dst: str, latency_s: float) -> None:
        """Override latency for one directed link (e.g. the Earth link)."""
        if latency_s < 0:
            raise ConfigError("latency must be non-negative")
        self._link_latency[(src, dst)] = latency_s

    # -- failure injection ------------------------------------------------

    def partition(self, src: str, dst: str, bidirectional: bool = True) -> None:
        """Cut a link."""
        self._down_links.add((src, dst))
        if bidirectional:
            self._down_links.add((dst, src))

    def heal(self, src: str, dst: str, bidirectional: bool = True) -> None:
        """Restore a cut link."""
        self._down_links.discard((src, dst))
        if bidirectional:
            self._down_links.discard((dst, src))

    def crash(self, name: str) -> None:
        """Crash a node: it stops receiving (and should stop sending)."""
        self._down_nodes.add(name)
        self.node(name).crashed = True

    def recover(self, name: str) -> None:
        """Recover a crashed node."""
        self._down_nodes.discard(name)
        self.node(name).crashed = False

    # -- delivery ---------------------------------------------------------

    def send(self, message: Message) -> None:
        """Queue a message for delivery (may be lost or blocked)."""
        if message.src in self._down_nodes:
            return  # a crashed node cannot transmit
        if (message.src, message.dst) in self._down_links:
            self.dropped += 1
            return
        if self.loss_prob > 0 and self.rng.random() < self.loss_prob:
            self.dropped += 1
            return
        latency = self._link_latency.get((message.src, message.dst), self.default_latency_s)
        self.sim.schedule(latency, self._deliver, message)

    def broadcast(self, src: str, kind: str, payload: Any = None) -> None:
        """Send to every other registered node."""
        for name in self._nodes:
            if name != src:
                self.send(Message(src=src, dst=name, kind=kind, payload=payload))

    def _deliver(self, message: Message) -> None:
        if message.dst in self._down_nodes:
            self.dropped += 1
            return
        node = self._nodes.get(message.dst)
        if node is None:
            self.dropped += 1
            return
        self.delivered += 1
        node.on_message(message)


class Node:
    """Base class for support-system units."""

    def __init__(self, name: str, sim: Simulator):
        self.name = name
        self.sim = sim
        self.network: Optional[Network] = None
        self.crashed = False
        self.inbox_count = 0

    def send(self, dst: str, kind: str, payload: Any = None) -> None:
        """Send a message over the bus."""
        if self.network is None:
            raise ProtocolError(f"node {self.name!r} is not attached to a network")
        self.network.send(Message(src=self.name, dst=dst, kind=kind, payload=payload))

    def on_message(self, message: Message) -> None:
        """Handle a delivered message; dispatches to ``handle_<kind>``."""
        if self.crashed:
            return
        self.inbox_count += 1
        handler = getattr(self, f"handle_{message.kind}", None)
        if handler is None:
            self.handle_default(message)
        else:
            handler(message)

    def handle_default(self, message: Message) -> None:
        """Fallback for unrecognized message kinds (override to log)."""

    def every(self, period_s: float, callback, *args) -> None:
        """Run ``callback`` periodically until the node crashes."""
        def tick() -> None:
            if not self.crashed:
                callback(*args)
            self.sim.schedule(period_s, tick)

        self.sim.schedule(period_s, tick)


@dataclass
class EventLog:
    """Shared append-only log used by tests and scenarios."""

    entries: list[tuple[float, str, str]] = field(default_factory=list)

    def record(self, time_s: float, source: str, text: str) -> None:
        self.entries.append((time_s, source, text))

    def matching(self, substring: str) -> list[tuple[float, str, str]]:
        return [e for e in self.entries if substring in e[2]]
