"""The habitat message bus.

Support-system units (stream processors, the alert engine, the Earth
link, replicas) are :class:`Node` instances exchanging :class:`Message`
objects over a :class:`Network` that models per-link latency, loss, and
injected partitions — the substrate every Section-VI scenario runs on.

Accounting is exact: every :meth:`Network.send` increments ``sent``, and
each message ends up in exactly one of ``delivered`` or ``dropped``
(whatever the drop reason — crashed source, cut link, channel loss,
crashed/unknown destination), so ``sent == delivered + dropped`` holds
whenever no message is still in flight.  With :mod:`repro.obs` enabled
the same accounting is exported per message ``kind`` and drop reason,
plus a per-kind delivery-latency histogram and structured logs for every
fault-injection action.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.core.engine import Event, Simulator
from repro.core.errors import ConfigError, ProtocolError
from repro.obs import _state as _obs
from repro.obs import metrics as _metrics
from repro.obs.logging import get_logger

log = get_logger("repro.support.bus")


@dataclass(frozen=True)
class Message:
    """One bus message."""

    src: str
    dst: str
    kind: str
    payload: Any = None

    def __repr__(self) -> str:
        return f"<Message {self.src}->{self.dst} {self.kind}>"


class Network:
    """Point-to-point message delivery with latency, loss, partitions."""

    def __init__(
        self,
        sim: Simulator,
        default_latency_s: float = 0.02,
        loss_prob: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ):
        if default_latency_s < 0:
            raise ConfigError("latency must be non-negative")
        if not 0.0 <= loss_prob < 1.0:
            raise ConfigError("loss_prob must be in [0, 1)")
        self.sim = sim
        self.default_latency_s = default_latency_s
        self.loss_prob = loss_prob
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._nodes: dict[str, "Node"] = {}
        self._link_latency: dict[tuple[str, str], float] = {}
        self._down_links: set[tuple[str, str]] = set()
        self._down_nodes: set[str] = set()
        self.sent = 0
        self.delivered = 0
        self.dropped = 0

    # -- topology -------------------------------------------------------

    def register(self, node: "Node") -> None:
        """Attach a node to the bus (names must be unique)."""
        if node.name in self._nodes:
            raise ConfigError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node
        node.network = self

    def node(self, name: str) -> "Node":
        try:
            return self._nodes[name]
        except KeyError:
            raise ProtocolError(f"no node named {name!r}") from None

    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def set_link_latency(self, src: str, dst: str, latency_s: float) -> None:
        """Override latency for one directed link (e.g. the Earth link)."""
        if latency_s < 0:
            raise ConfigError("latency must be non-negative")
        self._link_latency[(src, dst)] = latency_s

    # -- failure injection ------------------------------------------------

    def partition(self, src: str, dst: str, bidirectional: bool = True) -> None:
        """Cut a link."""
        self._down_links.add((src, dst))
        if bidirectional:
            self._down_links.add((dst, src))
        log.warning("link-partitioned", src=src, dst=dst,
                    bidirectional=bidirectional, sim_time=self.sim.now)

    def heal(self, src: str, dst: str, bidirectional: bool = True) -> None:
        """Restore a cut link."""
        self._down_links.discard((src, dst))
        if bidirectional:
            self._down_links.discard((dst, src))
        log.info("link-healed", src=src, dst=dst,
                 bidirectional=bidirectional, sim_time=self.sim.now)

    def crash(self, name: str) -> None:
        """Crash a node: it stops receiving (and should stop sending)."""
        self._down_nodes.add(name)
        self.node(name).crashed = True
        log.warning("node-crashed", node=name, sim_time=self.sim.now)

    def recover(self, name: str) -> None:
        """Recover a crashed node."""
        self._down_nodes.discard(name)
        self.node(name).crashed = False
        log.info("node-recovered", node=name, sim_time=self.sim.now)

    # -- delivery ---------------------------------------------------------

    def _drop(self, message: Message, reason: str) -> None:
        """Count (and, with telemetry on, export and log) one dropped message."""
        self.dropped += 1
        if _obs.enabled:
            _metrics.counter(
                "bus.dropped", "messages dropped, by kind and reason"
            ).inc(kind=message.kind, reason=reason)
            log.debug("message-dropped", src=message.src, dst=message.dst,
                      kind=message.kind, reason=reason, sim_time=self.sim.now)

    def send(self, message: Message) -> None:
        """Queue a message for delivery (may be lost or blocked)."""
        self.sent += 1
        if _obs.enabled:
            _metrics.counter(
                "bus.sent", "messages handed to the bus, by kind"
            ).inc(kind=message.kind)
        if message.src in self._down_nodes:
            # A crashed node cannot transmit; the attempt still counts so
            # bus accounting stays exact across all drop reasons.
            self._drop(message, "src-crashed")
            return
        if (message.src, message.dst) in self._down_links:
            self._drop(message, "partitioned")
            return
        if self.loss_prob > 0 and self.rng.random() < self.loss_prob:
            self._drop(message, "loss")
            return
        latency = self._link_latency.get((message.src, message.dst), self.default_latency_s)
        self.sim.schedule(latency, self._deliver, message, latency)

    def broadcast(self, src: str, kind: str, payload: Any = None) -> None:
        """Send to every other registered node."""
        for name in self._nodes:
            if name != src:
                self.send(Message(src=src, dst=name, kind=kind, payload=payload))

    def _deliver(self, message: Message, latency: float = 0.0) -> None:
        if message.dst in self._down_nodes:
            self._drop(message, "dst-crashed")
            return
        node = self._nodes.get(message.dst)
        if node is None:
            self._drop(message, "no-such-node")
            return
        self.delivered += 1
        if _obs.enabled:
            _metrics.counter(
                "bus.delivered", "messages delivered, by kind"
            ).inc(kind=message.kind)
            _metrics.histogram(
                "bus.latency_s", "delivery latency seconds, by kind"
            ).observe(latency, kind=message.kind)
        node.on_message(message)

    def in_flight(self) -> int:
        """Messages queued on the simulator but not yet delivered/dropped."""
        return self.sent - self.delivered - self.dropped


class PeriodicTask:
    """Cancellable handle returned by :meth:`Node.every`."""

    __slots__ = ("cancelled", "_event")

    def __init__(self) -> None:
        self.cancelled = False
        self._event: Optional[Event] = None

    def cancel(self) -> None:
        """Stop the periodic callback.  Idempotent."""
        self.cancelled = True
        if self._event is not None:
            self._event.cancel()
            self._event = None


class Node:
    """Base class for support-system units."""

    def __init__(self, name: str, sim: Simulator):
        self.name = name
        self.sim = sim
        self.network: Optional[Network] = None
        self.crashed = False
        self.inbox_count = 0

    def send(self, dst: str, kind: str, payload: Any = None) -> None:
        """Send a message over the bus."""
        if self.network is None:
            raise ProtocolError(f"node {self.name!r} is not attached to a network")
        self.network.send(Message(src=self.name, dst=dst, kind=kind, payload=payload))

    def on_message(self, message: Message) -> None:
        """Handle a delivered message; dispatches to ``handle_<kind>``."""
        if self.crashed:
            return
        self.inbox_count += 1
        handler = getattr(self, f"handle_{message.kind}", None)
        if handler is None:
            self.handle_default(message)
        else:
            handler(message)

    def handle_default(self, message: Message) -> None:
        """Fallback for unrecognized message kinds (override to log)."""

    def every(self, period_s: float, callback, *args) -> PeriodicTask:
        """Run ``callback`` periodically until cancelled or the node crashes.

        Once ``crashed`` is set the tick stops rescheduling itself, so a
        drained scenario's :meth:`Simulator.run` terminates; cancel the
        returned handle to stop it explicitly.
        """
        task = PeriodicTask()

        def tick() -> None:
            if self.crashed or task.cancelled:
                task._event = None
                return
            callback(*args)
            if not self.crashed and not task.cancelled:
                task._event = self.sim.schedule(period_s, tick)
            else:
                task._event = None

        task._event = self.sim.schedule(period_s, tick)
        return task


@dataclass
class EventLog:
    """Shared append-only log used by tests and scenarios."""

    entries: list[tuple[float, str, str]] = field(default_factory=list)

    def record(self, time_s: float, source: str, text: str) -> None:
        self.entries.append((time_s, source, text))

    def matching(self, substring: str) -> list[tuple[float, str, str]]:
        return [e for e in self.entries if substring in e[2]]
