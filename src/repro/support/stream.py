"""Real-time sensor stream processing.

The paper's key lesson: post-mortem analysis is good, "real-time
feedback to the astronauts on the results of the analyses" is what a
mission support system needs.  :class:`SensorStream` replays badge-day
observations onto the bus as periodic window summaries, processed
entirely on-site ("with local resources only").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analytics.dataset import BadgeDaySummary
from repro.core.engine import Simulator
from repro.core.errors import ConfigError
from repro.support.bus import Node


@dataclass(frozen=True)
class StreamWindow:
    """One windowed summary of a badge's recent data."""

    badge_id: int
    t0: float
    t1: float
    worn_fraction: float
    speech_fraction: float
    mean_accel: float
    room_mode: int

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


def summarize_window(summary: BadgeDaySummary, lo: float, hi: float) -> StreamWindow:
    """Reduce a badge-day slice ``[lo, hi)`` (seconds of day) to a window."""
    i0 = max(0, int((lo - summary.t0) / summary.dt))
    i1 = min(summary.n_frames, int((hi - summary.t0) / summary.dt))
    if i1 <= i0:
        raise ConfigError("empty stream window")
    active = summary.active[i0:i1]
    voice = summary.voice_db[i0:i1]
    loud = active & ~np.isnan(voice) & (voice >= 60.0)
    accel = summary.accel_rms[i0:i1]
    rooms = summary.room[i0:i1]
    known = rooms[rooms >= 0]
    if known.size:
        values, counts = np.unique(known, return_counts=True)
        room_mode = int(values[np.argmax(counts)])
    else:
        room_mode = -1
    n = i1 - i0
    return StreamWindow(
        badge_id=summary.badge_id,
        t0=lo,
        t1=hi,
        worn_fraction=float(summary.worn[i0:i1].mean()),
        speech_fraction=float(loud.sum()) / max(int(active.sum()), 1),
        mean_accel=float(np.nanmean(accel)) if np.isfinite(accel).any() else 0.0,
        room_mode=room_mode,
    )


class SensorStream(Node):
    """Replays one badge-day onto the bus as periodic window summaries.

    Each tick publishes a ``window`` message to the configured
    subscribers (typically the alert engine and a replica set).
    """

    def __init__(
        self,
        name: str,
        sim: Simulator,
        summary: BadgeDaySummary,
        subscribers: list[str],
        window_s: float = 300.0,
        time_scale: float = 1.0,
    ):
        super().__init__(name, sim)
        if window_s <= 0 or time_scale <= 0:
            raise ConfigError("window_s and time_scale must be positive")
        self.summary = summary
        self.subscribers = list(subscribers)
        self.window_s = window_s
        self.time_scale = time_scale
        self._cursor = summary.t0
        self.windows_published = 0

    def start(self) -> None:
        """Begin publishing (simulation time runs ``time_scale`` x faster
        than badge time, so a day can replay in seconds)."""
        self.sim.schedule(self.window_s / self.time_scale, self._tick)

    def _tick(self) -> None:
        if self.crashed:
            return
        end = self.summary.t0 + self.summary.n_frames * self.summary.dt
        hi = min(self._cursor + self.window_s, end)
        if hi <= self._cursor:
            return  # day replayed fully
        window = summarize_window(self.summary, self._cursor, hi)
        for subscriber in self.subscribers:
            self.send(subscriber, "window", window)
        self.windows_published += 1
        self._cursor = hi
        if hi < end:
            self.sim.schedule(self.window_s / self.time_scale, self._tick)
