"""Unit replication with heartbeat failover.

The paper is explicit that habitat components "may fail and thus have to
be replicated so that a partial failure ... does not hinder the success
of the entire mission" — and equally explicit that the deployed system's
reference badge was *not* replicated ("the risk of its failure did not
warrant the effort necessary for implementing failover software").
:class:`ReplicatedService` provides what that deployment lacked: a
primary/backup pair with heartbeats, deterministic failover, and state
transfer; the ablation benchmark contrasts it with a single instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.engine import Simulator
from repro.core.errors import ConfigError
from repro.support.bus import Message, Network, Node


class Replica(Node):
    """One replica of a stateful service.

    State is an append-only list of accepted updates; the primary
    forwards each accepted update to its peer, and heartbeats let the
    backup detect a dead primary and take over.  Crash recovery restarts
    the heartbeat/monitor tasks, resets the peer-heartbeat clock (a
    stale clock would otherwise trigger an instant, false failover into
    split-brain), and requests a state sync from the peer to pick up
    updates accepted while this replica was down.
    """

    def __init__(
        self,
        name: str,
        sim: Simulator,
        peer: str,
        is_primary: bool,
        heartbeat_s: float = 1.0,
        failover_timeout_s: float = 3.5,
    ):
        super().__init__(name, sim)
        if failover_timeout_s <= heartbeat_s:
            raise ConfigError("failover timeout must exceed the heartbeat period")
        self.peer = peer
        self.is_primary = is_primary
        self.heartbeat_s = heartbeat_s
        self.failover_timeout_s = failover_timeout_s
        self.state: list[Any] = []
        self.last_peer_heartbeat = 0.0
        self.took_over_at: float | None = None
        self.rejected_updates = 0
        #: (sim_time, "take-over" | "yield") role changes, in order.
        self.transitions: list[tuple[float, str]] = []
        self._tasks: list = []

    def start(self) -> None:
        """Begin heartbeating and monitoring the peer."""
        self.last_peer_heartbeat = self.sim.now
        self._start_tasks()

    def stop(self) -> None:
        """Cancel the periodic protocol tasks (scenario teardown)."""
        for task in self._tasks:
            task.cancel()
        self._tasks = []

    def _start_tasks(self) -> None:
        self.stop()
        self._tasks = [
            self.every(self.heartbeat_s, self._heartbeat),
            self.every(self.heartbeat_s, self._check_primary),
        ]

    def on_crash(self) -> None:
        self.stop()

    def on_recover(self) -> None:
        # Reset the heartbeat clock BEFORE the monitor restarts: comparing
        # against the pre-crash timestamp would (wrongly) declare the peer
        # dead on the very first check.
        self.last_peer_heartbeat = self.sim.now
        self._start_tasks()
        self.send(self.peer, "sync_request")

    # -- client API --------------------------------------------------------

    def submit(self, update: Any) -> bool:
        """Accept an update if primary; replicate to the peer."""
        if self.crashed or not self.is_primary:
            self.rejected_updates += 1
            return False
        self.state.append(update)
        self.send(self.peer, "replicate", update)
        return True

    # -- protocol ------------------------------------------------------------

    def _heartbeat(self) -> None:
        self.send(self.peer, "heartbeat", self.sim.now)

    def _check_primary(self) -> None:
        if self.is_primary:
            return
        if self.sim.now - self.last_peer_heartbeat > self.failover_timeout_s:
            self.is_primary = True
            self.took_over_at = self.sim.now
            self.transitions.append((self.sim.now, "take-over"))

    def handle_heartbeat(self, message: Message) -> None:
        self.last_peer_heartbeat = self.sim.now
        # Split-brain resolution: if both believe they are primary once a
        # partition heals, the lexicographically smaller name yields.
        if self.is_primary and self.took_over_at is not None and self.name > message.src:
            self.is_primary = False
            self.took_over_at = None
            self.transitions.append((self.sim.now, "yield"))

    def handle_replicate(self, message: Message) -> None:
        self.state.append(message.payload)

    def handle_submit(self, message: Message) -> None:
        """Remote client write (see :meth:`submit`); rejected on backups."""
        self.submit(message.payload)

    def handle_sync_request(self, message: Message) -> None:
        """A recovering peer asks for the updates it missed."""
        self.send(message.src, "sync_state", list(self.state))

    def handle_sync_state(self, message: Message) -> None:
        """Adopt the peer's longer update log after recovery."""
        if len(message.payload) > len(self.state):
            self.state = list(message.payload)


@dataclass
class ReplicatedService:
    """A primary/backup pair attached to a network."""

    primary: Replica
    backup: Replica

    @classmethod
    def build(
        cls,
        network: Network,
        sim: Simulator,
        base_name: str = "svc",
        heartbeat_s: float = 1.0,
        failover_timeout_s: float = 3.5,
    ) -> "ReplicatedService":
        primary = Replica(f"{base_name}-a", sim, peer=f"{base_name}-b", is_primary=True,
                          heartbeat_s=heartbeat_s, failover_timeout_s=failover_timeout_s)
        backup = Replica(f"{base_name}-b", sim, peer=f"{base_name}-a", is_primary=False,
                         heartbeat_s=heartbeat_s, failover_timeout_s=failover_timeout_s)
        network.register(primary)
        network.register(backup)
        primary.start()
        backup.start()
        return cls(primary=primary, backup=backup)

    def current_primary(self) -> Replica | None:
        """The live replica currently acting as primary, if any."""
        candidates = [r for r in (self.primary, self.backup)
                      if r.is_primary and not r.crashed]
        return candidates[0] if candidates else None

    def submit(self, update: Any) -> bool:
        """Submit via whichever replica is primary now."""
        primary = self.current_primary()
        return primary.submit(update) if primary is not None else False
