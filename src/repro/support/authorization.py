"""Multi-party authorization of system changes.

"To protect the system from harmful changes introduced by disobedient
individuals, it might be worthwhile to require approvals from all the
teammates and the mission control before any significant change to the
system is applied."  A :class:`Proposal` gathers crew votes locally and
a (delayed) mission-control vote; quorum rules decide, with an explicit
emergency path for time-critical cases where "terrestrial assistance is
not sufficient".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.engine import Simulator
from repro.core.errors import ConfigError, ProtocolError
from repro.support.bus import Message, Node


class ProposalState(enum.Enum):
    PENDING = "pending"
    APPROVED = "approved"
    REJECTED = "rejected"
    EXPIRED = "expired"


@dataclass
class Proposal:
    """A proposed change to the deployed system."""

    proposal_id: int
    description: str
    proposer: str
    emergency: bool = False
    votes: dict[str, bool] = field(default_factory=dict)
    earth_vote: bool | None = None
    state: ProposalState = ProposalState.PENDING
    decided_at: float | None = None


class AuthorizationService(Node):
    """Collects votes and decides proposals.

    Normal path: every crew member votes, mission control confirms
    (arriving after the link delay); unanimous crew approval plus an
    Earth yes approves.  Any rejection rejects.  Emergency path: a crew
    majority alone approves after ``emergency_quorum`` yes votes — when
    lives are at stake the 40-minute round trip cannot gate action.
    Undecided proposals expire after ``timeout_s``.
    """

    def __init__(
        self,
        name: str,
        sim: Simulator,
        crew: list[str],
        earth: str = "earth",
        timeout_s: float = 3 * 3600.0,
    ):
        super().__init__(name, sim)
        if not crew:
            raise ConfigError("authorization needs a crew")
        self.crew = list(crew)
        self.earth = earth
        self.timeout_s = timeout_s
        self.proposals: dict[int, Proposal] = {}
        self._next_id = 0

    # -- API -----------------------------------------------------------------

    def propose(self, proposer: str, description: str, emergency: bool = False) -> Proposal:
        """Open a proposal; the proposer implicitly votes yes."""
        if proposer not in self.crew:
            raise ProtocolError(f"unknown proposer {proposer!r}")
        proposal = Proposal(self._next_id, description, proposer, emergency=emergency)
        proposal.votes[proposer] = True
        self._next_id += 1
        self.proposals[proposal.proposal_id] = proposal
        if not emergency:
            self.send(self.earth, "vote_request", proposal.proposal_id)
        self.sim.schedule(self.timeout_s, self._expire, proposal.proposal_id)
        self._evaluate(proposal)
        return proposal

    def vote(self, proposal_id: int, voter: str, approve: bool) -> None:
        """Record a crew vote."""
        proposal = self._get(proposal_id)
        if voter not in self.crew:
            raise ProtocolError(f"unknown voter {voter!r}")
        if proposal.state is not ProposalState.PENDING:
            return
        proposal.votes[voter] = approve
        self._evaluate(proposal)

    def handle_earth_vote(self, message: Message) -> None:
        proposal_id, approve = message.payload
        proposal = self.proposals.get(proposal_id)
        if proposal is None or proposal.state is not ProposalState.PENDING:
            return
        proposal.earth_vote = bool(approve)
        self._evaluate(proposal)

    # -- decision logic ---------------------------------------------------------

    @property
    def emergency_quorum(self) -> int:
        """Majority of the crew."""
        return len(self.crew) // 2 + 1

    def _evaluate(self, proposal: Proposal) -> None:
        if proposal.state is not ProposalState.PENDING:
            return
        if any(not v for v in proposal.votes.values()) or proposal.earth_vote is False:
            self._decide(proposal, ProposalState.REJECTED)
            return
        yes = sum(1 for v in proposal.votes.values() if v)
        if proposal.emergency:
            if yes >= self.emergency_quorum:
                self._decide(proposal, ProposalState.APPROVED)
            return
        if yes == len(self.crew) and proposal.earth_vote is True:
            self._decide(proposal, ProposalState.APPROVED)

    def _decide(self, proposal: Proposal, state: ProposalState) -> None:
        proposal.state = state
        proposal.decided_at = self.sim.now

    def _expire(self, proposal_id: int) -> None:
        proposal = self.proposals.get(proposal_id)
        if proposal is not None and proposal.state is ProposalState.PENDING:
            self._decide(proposal, ProposalState.EXPIRED)

    def _get(self, proposal_id: int) -> Proposal:
        try:
            return self.proposals[proposal_id]
        except KeyError:
            raise ProtocolError(f"no proposal {proposal_id}") from None


class EarthVoter(Node):
    """Mission-control side of the authorization protocol.

    Approves or rejects vote requests according to a configurable
    policy; replies traverse the delayed Earth link.
    """

    def __init__(self, name: str, sim: Simulator, service: str, approve_all: bool = True):
        super().__init__(name, sim)
        self.service = service
        self.approve_all = approve_all
        self.requests_seen: list[int] = []

    def handle_vote_request(self, message: Message) -> None:
        proposal_id = message.payload
        self.requests_seen.append(proposal_id)
        self.send(self.service, "earth_vote", (proposal_id, self.approve_all))
