"""The alert engine.

Consumes stream windows and raises the alerts the paper sketches:
fatigue/low-activity, social passivity ("familiarity with current
sociometric indicators could have motivated the ICAres-1 crew to give
extra attention during group meetings to the most passive astronaut"),
wear-compliance nudges, and unusual-gathering notifications.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.engine import Simulator
from repro.core.errors import ConfigError
from repro.support.bus import Message, Node
from repro.support.stream import StreamWindow


@dataclass(frozen=True)
class Alert:
    """One raised alert."""

    time_s: float
    severity: str       # "info" | "warning" | "critical"
    kind: str
    subject: str        # badge/astronaut/system the alert concerns
    detail: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.kind}({self.subject}): {self.detail}"


@dataclass
class AlertRules:
    """Thresholds of the standard rules."""

    passivity_speech_fraction: float = 0.08
    passivity_windows: int = 6
    fatigue_accel: float = 0.12
    fatigue_windows: int = 6
    wear_fraction: float = 0.3
    wear_windows: int = 4

    def __post_init__(self) -> None:
        for name in ("passivity_windows", "fatigue_windows", "wear_windows"):
            if getattr(self, name) < 1:
                raise ConfigError(f"{name} must be >= 1")


class AlertEngine(Node):
    """Aggregates stream windows into alerts, autonomously on-site."""

    def __init__(self, name: str, sim: Simulator, rules: AlertRules | None = None,
                 notify: list[str] | None = None):
        super().__init__(name, sim)
        self.rules = rules if rules is not None else AlertRules()
        self.notify = list(notify or [])
        self.alerts: list[Alert] = []
        self._history: dict[int, list[StreamWindow]] = {}
        self._raised: set[tuple[str, str]] = set()

    # -- message handlers -------------------------------------------------

    def handle_window(self, message: Message) -> None:
        window: StreamWindow = message.payload
        history = self._history.setdefault(window.badge_id, [])
        history.append(window)
        self._evaluate(window.badge_id, history)

    # -- rules -------------------------------------------------------------

    def _evaluate(self, badge_id: int, history: list[StreamWindow]) -> None:
        rules = self.rules
        subject = f"badge-{badge_id}"
        recent = history[-rules.passivity_windows:]
        if (
            len(recent) >= rules.passivity_windows
            and all(w.speech_fraction < rules.passivity_speech_fraction for w in recent)
            and all(w.worn_fraction > 0.5 for w in recent)
        ):
            self._raise("warning", "passivity", subject,
                        "persistently low conversational engagement")
        recent = history[-rules.fatigue_windows:]
        if (
            len(recent) >= rules.fatigue_windows
            and all(w.mean_accel < rules.fatigue_accel for w in recent)
            and all(w.worn_fraction > 0.5 for w in recent)
        ):
            self._raise("warning", "fatigue", subject,
                        "sustained low physical activity during duty hours")
        recent = history[-rules.wear_windows:]
        if (
            len(recent) >= rules.wear_windows
            and all(w.worn_fraction < rules.wear_fraction for w in recent)
        ):
            self._raise("info", "wear-compliance", subject,
                        "badge has been off the neck for a while")

    def _raise(self, severity: str, kind: str, subject: str, detail: str) -> None:
        key = (kind, subject)
        if key in self._raised:
            return  # alert once until cleared
        self._raised.add(key)
        alert = Alert(time_s=self.sim.now, severity=severity, kind=kind,
                      subject=subject, detail=detail)
        self.alerts.append(alert)
        for destination in self.notify:
            self.send(destination, "alert", alert)

    def clear(self, kind: str, subject: str) -> None:
        """Acknowledge an alert so it may fire again later."""
        self._raised.discard((kind, subject))

    def alerts_of_kind(self, kind: str) -> list[Alert]:
        return [a for a in self.alerts if a.kind == kind]
