"""Reliable-delivery state machines for the message bus.

The bus itself is fire-and-forget — loss, partitions, and crashes
silently drop messages (each drop *is* counted).  Habitat-critical
traffic (paper Section VI: alerts, mission-control commands, replica
updates) needs more: :meth:`repro.support.bus.Node.send_reliable` layers
acknowledgements, retries under exponential backoff with jitter, a
dead-letter queue, and receiver-side deduplication on top of the same
bus, so delivery is **exactly-once-or-dead-lettered** — never silent.

This module holds the pure state machines that layer uses; they have no
simulator or network dependency so they stay independently testable:

- :class:`PendingReliable` — one in-flight reliable message on the
  sender (attempt count, backoff schedule, ack timer handle);
- :class:`DeadLetter` — a message the sender gave up on, with the
  reason (``max-attempts`` or ``circuit-open``);
- :class:`CircuitBreaker` — per-destination closed/open/half-open
  breaker that fast-fails sends to a destination that keeps timing out
  (the high-latency Earth link during a blackout);
- :class:`ReliableStats` — per-kind sent/acked/dead-lettered counters
  and derived delivery-success ratios.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.errors import ConfigError

#: Reserved message kind carrying an acknowledgement (payload: msg_id).
ACK_KIND = "__ack__"

#: Give up on a reliable message after this many transmission attempts.
DEFAULT_MAX_ATTEMPTS = 6

#: Breaker: consecutive ack timeouts to a destination before opening.
DEFAULT_FAILURE_THRESHOLD = 4

#: Breaker: cooldown as a multiple of the ack timeout before probing.
DEFAULT_COOLDOWN_TIMEOUTS = 10.0


@dataclass
class PendingReliable:
    """Sender-side state for one in-flight reliable message."""

    msg_id: str
    dst: str
    kind: str
    payload: Any
    max_attempts: int
    ack_timeout_s: float
    backoff_base_s: float
    first_sent_s: float
    attempts: int = 0
    #: The scheduled ack-timeout (or retransmit) engine event.
    timer: Any = None

    def backoff_s(self, jitter: float) -> float:
        """Delay before the next retransmission.

        Exponential in the attempt number, scaled by ``jitter`` (drawn
        by the caller from the network RNG so retry storms desynchronize
        deterministically).
        """
        return self.backoff_base_s * (2.0 ** (self.attempts - 1)) * jitter


@dataclass(frozen=True)
class DeadLetter:
    """A reliable message the sender abandoned (never silently lost)."""

    msg_id: str
    dst: str
    kind: str
    payload: Any
    attempts: int
    first_sent_s: float
    dead_at_s: float
    reason: str  # "max-attempts" | "circuit-open"


class CircuitBreaker:
    """Per-destination breaker: fail fast instead of queueing retries.

    Closed passes traffic; ``failure_threshold`` consecutive failures
    open it; after ``cooldown_s`` one half-open probe is allowed — its
    success closes the breaker, its failure re-opens it.  This is what
    keeps a 20-minute-latency Earth link blackout from pinning every
    habitat sender in retry loops (they dead-letter immediately and the
    DLQ can be drained once the link returns).
    """

    __slots__ = ("failure_threshold", "cooldown_s", "state", "opens",
                 "_failures", "_opened_at")

    def __init__(
        self,
        failure_threshold: int = DEFAULT_FAILURE_THRESHOLD,
        cooldown_s: float = 60.0,
    ):
        if failure_threshold < 1:
            raise ConfigError("failure_threshold must be >= 1")
        if cooldown_s <= 0:
            raise ConfigError("cooldown_s must be positive")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.state = "closed"
        self.opens = 0
        self._failures = 0
        self._opened_at: Optional[float] = None

    def allow(self, now: float) -> bool:
        """Whether a send may be attempted at ``now``."""
        if self.state == "closed":
            return True
        if self.state == "open":
            if self._opened_at is not None and now - self._opened_at >= self.cooldown_s:
                self.state = "half-open"
                return True  # the single probe
            return False
        return False  # half-open: probe already outstanding

    def record_success(self, now: float) -> None:
        self.state = "closed"
        self._failures = 0
        self._opened_at = None

    def record_failure(self, now: float) -> None:
        self._failures += 1
        if self.state == "half-open" or self._failures >= self.failure_threshold:
            if self.state != "open":
                self.opens += 1
            self.state = "open"
            self._opened_at = now
            self._failures = 0


@dataclass
class ReliableStats:
    """Per-kind reliable-delivery accounting for one sender."""

    sent: dict[str, int] = field(default_factory=dict)
    acked: dict[str, int] = field(default_factory=dict)
    dead: dict[str, int] = field(default_factory=dict)
    retries: int = 0

    def record_sent(self, kind: str) -> None:
        self.sent[kind] = self.sent.get(kind, 0) + 1

    def record_acked(self, kind: str) -> None:
        self.acked[kind] = self.acked.get(kind, 0) + 1

    def record_dead(self, kind: str) -> None:
        self.dead[kind] = self.dead.get(kind, 0) + 1

    def delivery_success(self, kind: str) -> Optional[float]:
        """Acked fraction of reliable sends of ``kind``.

        ``None`` when nothing of that kind was sent: "no traffic" must
        stay distinguishable from genuine perfect delivery.
        """
        sent = self.sent.get(kind, 0)
        if sent == 0:
            return None
        return self.acked.get(kind, 0) / sent

    def kinds(self) -> list[str]:
        return sorted(set(self.sent) | set(self.acked) | set(self.dead))

    def merge_into(self, totals: "ReliableStats") -> None:
        """Accumulate this sender's counters into fleet-wide ``totals``."""
        for kind, n in self.sent.items():
            totals.sent[kind] = totals.sent.get(kind, 0) + n
        for kind, n in self.acked.items():
            totals.acked[kind] = totals.acked.get(kind, 0) + n
        for kind, n in self.dead.items():
            totals.dead[kind] = totals.dead.get(kind, 0) + n
        totals.retries += self.retries
