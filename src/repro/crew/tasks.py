"""Activity taxonomy of the mission.

Every frame of ground truth carries one activity code; the conversation
model uses the code to pick a talk regime (meals are chatty, EVAs are
silent inside the habitat, the consolation meeting is quiet).
"""

from __future__ import annotations

import enum


class Activity(enum.IntEnum):
    """What an astronaut is doing during a frame."""

    ABSENT = 0
    MEAL = 1
    BRIEFING = 2
    WORK = 3
    BREAK = 4
    EVA_PREP = 5
    EVA = 6
    EVA_POST = 7
    EXERCISE = 8
    RESTROOM = 9
    PERSONAL = 10
    CONSOLATION = 11
    TRANSIT = 12

    @property
    def is_group(self) -> bool:
        """Whether the activity is inherently a whole-crew gathering."""
        return self in (Activity.MEAL, Activity.BRIEFING, Activity.CONSOLATION)

    @property
    def badge_wearable(self) -> bool:
        """Whether a badge may be worn during this activity.

        The crew was not allowed to wear badges during EVAs (suits),
        in restrooms, or during physical exercise.
        """
        return self not in (Activity.EVA, Activity.RESTROOM, Activity.EXERCISE)


#: Talk regimes: (duty cycle of conversation bursts, mean burst length s,
#: speech loudness dB SPL at 1 m).  Applied when >= 2 people share a room.
#: Loudness ~68 dB at 1 m puts a speaker right at the paper's 60 dB
#: detection threshold from 2.5 m away; the consolation meeting is
#: "clearly quieter" and only detectable close-by.
TALK_REGIMES: dict[Activity, tuple[float, float, float]] = {
    Activity.MEAL: (0.80, 60.0, 68.0),
    Activity.BRIEFING: (0.85, 90.0, 67.0),
    Activity.WORK: (0.58, 40.0, 66.0),
    Activity.BREAK: (0.70, 50.0, 67.0),
    Activity.PERSONAL: (0.45, 40.0, 65.0),
    Activity.EXERCISE: (0.15, 15.0, 67.0),
    Activity.CONSOLATION: (0.45, 35.0, 62.0),
    Activity.EVA_PREP: (0.50, 30.0, 66.0),
    Activity.EVA_POST: (0.50, 30.0, 66.0),
}

#: Activities with effectively no in-habitat conversation.
SILENT_ACTIVITIES = frozenset(
    {Activity.ABSENT, Activity.EVA, Activity.RESTROOM, Activity.TRANSIT}
)


def talk_regime(activity: Activity) -> tuple[float, float, float]:
    """Talk regime for an activity (duty, mean burst s, loudness dB)."""
    return TALK_REGIMES.get(activity, (0.3, 30.0, 63.0))
