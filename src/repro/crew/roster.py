"""The six-astronaut ICAres-1 roster and pairwise affinities.

Parameter values are calibrated so that the sensing pipeline reproduces
the paper's Table I orderings and magnitudes (see DESIGN.md §4):
walking  C > F > D > E > B > A, talking C > F > A ~ D > B > E,
company/centrality  B > D > F > A > E, and the strong A-F / weak D-E
pair relations ("A and F talked privately with each other for about 5 h
more than D and E").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import ConfigError
from repro.crew.astronaut import Profile

#: Crew identifiers in paper order.
CREW_IDS = ("A", "B", "C", "D", "E", "F")


def _default_profiles() -> tuple[Profile, ...]:
    return (
        Profile(
            astro_id="A",
            role="Science Officer",
            sex="f",
            mobility=0.42,
            talkativeness=0.62,
            sociability=0.25,
            walk_speed=0.75,
            wander_extent=0.35,
            impaired=True,
            # Part of A's work is solo sample/inventory processing in the
            # storage module (reachable, low-clutter -- ability-based
            # assignment), which keeps A's accompanied time below the rest.
            work_rooms={"biolab": 0.20, "office": 0.20, "storage": 0.60},
            voice_pitch_hz=208.0,
            wear_diligence=0.80,
        ),
        Profile(
            astro_id="B",
            role="Mission Commander",
            sex="m",
            mobility=0.33,
            talkativeness=0.55,
            sociability=1.00,
            work_rooms={"office": 0.7, "workshop": 0.15, "biolab": 0.15},
            voice_pitch_hz=118.0,
            supervises=True,
        ),
        Profile(
            astro_id="C",
            role="Engineer",
            sex="m",
            mobility=1.00,
            talkativeness=1.00,
            sociability=0.97,
            walk_speed=1.15,
            work_rooms={"workshop": 0.5, "biolab": 0.3, "office": 0.2},
            voice_pitch_hz=126.0,
        ),
        Profile(
            astro_id="D",
            role="Structural Material Scientist",
            sex="f",
            mobility=0.66,
            talkativeness=0.58,
            sociability=1.00,
            work_rooms={"workshop": 0.75, "biolab": 0.25},
            voice_pitch_hz=201.0,
        ),
        Profile(
            astro_id="E",
            role="Chief Medical Officer",
            sex="m",
            mobility=0.42,
            talkativeness=0.45,
            sociability=0.35,
            work_rooms={"biolab": 0.75, "office": 0.25},
            voice_pitch_hz=112.0,
        ),
        Profile(
            astro_id="F",
            role="Communications Officer",
            sex="f",
            mobility=0.70,
            talkativeness=0.80,
            sociability=0.50,
            work_rooms={"workshop": 0.5, "office": 0.5},
            voice_pitch_hz=216.0,
        ),
    )


@dataclass(frozen=True)
class Roster:
    """An ordered crew with a symmetric pair-affinity matrix.

    ``affinity[i, j]`` weights how likely astronauts i and j are to pair
    up for co-work and private conversations.
    """

    profiles: tuple[Profile, ...]
    affinity: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.profiles)
        ids = [p.astro_id for p in self.profiles]
        if len(set(ids)) != n:
            raise ConfigError("duplicate astronaut ids in roster")
        if self.affinity.shape != (n, n):
            raise ConfigError(f"affinity must be {n}x{n}")
        if not np.allclose(self.affinity, self.affinity.T):
            raise ConfigError("affinity matrix must be symmetric")
        if (self.affinity < 0).any():
            raise ConfigError("affinities must be non-negative")

    @property
    def ids(self) -> tuple[str, ...]:
        return tuple(p.astro_id for p in self.profiles)

    @property
    def size(self) -> int:
        return len(self.profiles)

    def index(self, astro_id: str) -> int:
        """Position of an astronaut id in the roster order."""
        try:
            return self.ids.index(astro_id)
        except ValueError:
            raise ConfigError(f"unknown astronaut {astro_id!r}") from None

    def profile(self, astro_id: str) -> Profile:
        """Profile by astronaut id."""
        return self.profiles[self.index(astro_id)]

    def pair_affinity(self, a: str, b: str) -> float:
        """Affinity weight between two astronauts."""
        return float(self.affinity[self.index(a), self.index(b)])


def icares_roster(crew_size: int = 6) -> Roster:
    """The default calibrated roster (optionally truncated for tests).

    Truncating keeps the first ``crew_size`` profiles; the full ICAres-1
    crew is six.
    """
    profiles = _default_profiles()
    if not 2 <= crew_size <= len(profiles):
        raise ConfigError(f"crew_size must be in [2, {len(profiles)}]")
    profiles = profiles[:crew_size]
    n = len(profiles)
    affinity = np.ones((n, n))
    np.fill_diagonal(affinity, 0.0)
    ids = [p.astro_id for p in profiles]

    def set_pair(a: str, b: str, value: float) -> None:
        if a in ids and b in ids:
            i, j = ids.index(a), ids.index(b)
            affinity[i, j] = affinity[j, i] = value

    set_pair("A", "F", 2.8)   # close friends (5 h more private talk than D-E)
    set_pair("D", "E", 0.25)  # distant pair
    set_pair("B", "E", 1.2)
    set_pair("B", "D", 1.7)   # the Commander leans on the energetic duo
    set_pair("B", "F", 1.0)
    set_pair("D", "F", 1.4)
    # C "had already taken part in a two-week mission, knew the place
    # perfectly, and shared his knowledge with others" -- everyone seeks
    # C out, which is what makes C the dominant conversationalist.
    for other in ("A", "B", "D", "E", "F"):
        set_pair("C", other, 1.9)
    return Roster(profiles=tuple(profiles), affinity=affinity)
