"""Astronaut personality / ability profiles.

The paper characterizes the crew indirectly — "D and F were described as
energetic, E was more reserved while B, as Mission Commander, had to
spend more time on paperwork"; C was "an energetic conversationalist";
A was visually impaired with limited hand function.  Profiles encode
those descriptions as behavioral parameters that the movement and
conversation models consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import ConfigError


@dataclass(frozen=True)
class Profile:
    """Behavioral parameters of one astronaut."""

    astro_id: str
    role: str
    #: 'f' or 'm'; the badge microphone distinguished male/female voices.
    sex: str
    #: Relative propensity to move around (scales in-room wandering).
    mobility: float
    #: Probability weight of speaking in a group conversation turn.
    talkativeness: float
    #: Probability of seeking company (co-working, social breaks).
    sociability: float
    #: Walking speed, m/s.
    walk_speed: float = 1.0
    #: Fraction of a room's extent used when wandering (impaired A keeps
    #: to the middle of rooms, away from corners).
    wander_extent: float = 0.85
    #: Whether the astronaut uses assistive technology (screen reader).
    impaired: bool = False
    #: Preferred work rooms with weights (must sum to ~1).
    work_rooms: dict[str, float] = field(default_factory=dict)
    #: Mean voice fundamental frequency, Hz (used by speaker ID).
    voice_pitch_hz: float = 160.0
    #: Whether this astronaut makes supervision rounds (the Commander
    #: "cooperated, supervised, and kept company with the crew").
    supervises: bool = False
    #: Multiplier on the mission-wide wear-compliance target.  The badge
    #: "hanging on their neck in the laboratory or workshop ... turned
    #: out to be a burden", and impaired A struggled with it most.
    wear_diligence: float = 1.0

    def __post_init__(self) -> None:
        if self.sex not in ("f", "m"):
            raise ConfigError(f"sex must be 'f' or 'm', got {self.sex!r}")
        for name in ("mobility", "talkativeness", "sociability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 2.0:
                raise ConfigError(f"{name} must be in [0, 2], got {value}")
        if self.walk_speed <= 0:
            raise ConfigError("walk_speed must be positive")
        if not 0.05 <= self.wander_extent <= 1.0:
            raise ConfigError("wander_extent must be in [0.05, 1]")
        if self.work_rooms:
            total = sum(self.work_rooms.values())
            if abs(total - 1.0) > 1e-6:
                raise ConfigError(f"work_rooms weights must sum to 1, got {total}")
            if any(w < 0 for w in self.work_rooms.values()):
                raise ConfigError("work_rooms weights must be non-negative")
        if self.voice_pitch_hz <= 0:
            raise ConfigError("voice_pitch_hz must be positive")
        if not 0.1 <= self.wear_diligence <= 1.0:
            raise ConfigError("wear_diligence must be in [0.1, 1]")
