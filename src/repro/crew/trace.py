"""Ground-truth mission traces.

The crew simulation emits, per astronaut per day, frame-aligned arrays
of position, room, motion, and speech.  Everything downstream — badge
sensors, radio links, analytics — derives from these traces, and tests
compare pipeline outputs against them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import MissionConfig
from repro.core.errors import DataError
from repro.crew.roster import Roster
from repro.crew.schedule import DaySchedule
from repro.habitat.floorplan import FloorPlan


@dataclass
class DayTrace:
    """One astronaut's ground truth for one day's daytime.

    All arrays have one entry per frame (default 1 Hz).  ``room`` uses
    floor-plan indices with ``OUTSIDE`` (-1) for EVA surface work or
    absence; positions are NaN outside the habitat.
    """

    astro_id: str
    day: int
    t0: float
    dt: float
    room: np.ndarray        # int8
    x: np.ndarray           # float32
    y: np.ndarray           # float32
    walking: np.ndarray     # bool
    speaking: np.ndarray    # bool -- this astronaut is producing speech
    loudness: np.ndarray    # float32, dB SPL at 1 m while speaking
    machine_speech: np.ndarray  # bool -- assistive TTS audible at this astronaut
    activity: np.ndarray    # int8 Activity codes

    def __post_init__(self) -> None:
        n = self.room.shape[0]
        for name in ("x", "y", "walking", "speaking", "loudness", "machine_speech", "activity"):
            arr = getattr(self, name)
            if arr.shape != (n,):
                raise DataError(f"{name} has shape {arr.shape}, expected ({n},)")

    @property
    def n_frames(self) -> int:
        return int(self.room.shape[0])

    def positions(self) -> np.ndarray:
        """``(n, 2)`` float64 positions (NaN where outside)."""
        return np.column_stack([self.x, self.y]).astype(np.float64)

    def present(self) -> np.ndarray:
        """Mask of frames where the astronaut is inside the habitat."""
        return self.room >= 0

    def times(self) -> np.ndarray:
        """Seconds-of-day timestamps per frame."""
        return self.t0 + np.arange(self.n_frames) * self.dt


@dataclass
class EventRecord:
    """One scripted or emergent event, for annotations and tests."""

    day: int
    time_s: float
    kind: str
    info: dict = field(default_factory=dict)


@dataclass
class MissionTruth:
    """Ground truth for a whole mission."""

    cfg: MissionConfig
    roster: Roster
    plan: FloorPlan
    traces: dict[tuple[str, int], DayTrace] = field(default_factory=dict)
    schedules: dict[int, DaySchedule] = field(default_factory=dict)
    events: list[EventRecord] = field(default_factory=list)

    def trace(self, astro_id: str, day: int) -> DayTrace:
        """Trace of one astronaut on one day."""
        try:
            return self.traces[(astro_id, day)]
        except KeyError:
            raise DataError(f"no trace for astronaut {astro_id!r} day {day}") from None

    @property
    def days(self) -> list[int]:
        """Simulated days, sorted."""
        return sorted({day for _, day in self.traces})

    def room_matrix(self, day: int) -> np.ndarray:
        """``(crew, frames)`` int8 matrix of ground-truth rooms on a day."""
        rows = [self.trace(astro, day).room for astro in self.roster.ids]
        return np.vstack(rows)

    def events_on(self, day: int, kind: str | None = None) -> list[EventRecord]:
        """Events recorded on a day, optionally filtered by kind."""
        return [e for e in self.events if e.day == day and (kind is None or e.kind == kind)]
