"""Ability-based design support (paper Section VI, "System Flexibility").

"Acknowledging diverse capabilities of users is one of the main lessons
learned during ICAres-1: unanticipated needs of the impaired astronaut A
resulted in various inconveniences and errors" — A swapped badges
because ids were shown on an e-ink display, and A's muffled microphone
and screen-reader audio confused the analyses.  This module models
capability profiles and derives the interface adaptations the paper
recommends ("informative light signals complemented by sounds, buttons
corresponding to voice commands").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crew.astronaut import Profile


@dataclass(frozen=True)
class AbilityProfile:
    """Sensory/motor capabilities relevant to habitat interfaces."""

    vision: float = 1.0      # 0 = blind, 1 = full
    hearing: float = 1.0
    speech: float = 1.0
    fine_motor: float = 1.0  # hand dexterity
    gross_motor: float = 1.0  # locomotion

    @classmethod
    def from_profile(cls, profile: Profile) -> "AbilityProfile":
        """Derive abilities from a behavioral profile.

        The ICAres-1 impaired astronaut was "visually impaired and had
        no left hand nor three fingers in the other palm".
        """
        if profile.impaired:
            return cls(vision=0.2, hearing=1.0, speech=1.0, fine_motor=0.3,
                       gross_motor=0.7)
        return cls()


@dataclass(frozen=True)
class InterfaceAdaptation:
    """One recommended device/interface adaptation."""

    device: str
    adaptation: str
    rationale: str


#: Which ability gates which interface channel (threshold below which an
#: alternative channel is required).
CHANNEL_REQUIREMENTS = {
    "e-ink id display": ("vision", 0.6),
    "status LEDs": ("vision", 0.5),
    "push buttons": ("fine_motor", 0.5),
    "touch panel": ("fine_motor", 0.6),
    "audible alarms": ("hearing", 0.5),
    "voice commands": ("speech", 0.5),
}

#: Substitute channel per inaccessible one.
CHANNEL_SUBSTITUTES = {
    "e-ink id display": "tactile id marker + audio announcement",
    "status LEDs": "spoken status via bone-conduction earpiece",
    "push buttons": "voice commands",
    "touch panel": "voice commands with confirmation tone",
    "audible alarms": "haptic wristband alerts",
    "voice commands": "large-format switches",
}


def interface_adaptations(abilities: AbilityProfile) -> list[InterfaceAdaptation]:
    """Adaptations required for a crew member's abilities."""
    out: list[InterfaceAdaptation] = []
    for channel, (ability, threshold) in sorted(CHANNEL_REQUIREMENTS.items()):
        level = getattr(abilities, ability)
        if level < threshold:
            out.append(
                InterfaceAdaptation(
                    device=channel,
                    adaptation=CHANNEL_SUBSTITUTES[channel],
                    rationale=f"{ability} {level:.1f} below required {threshold:.1f}",
                )
            )
    return out


@dataclass
class AccessibilityAudit:
    """Habitat-wide audit: who cannot use what, and the fixes."""

    findings: dict[str, list[InterfaceAdaptation]] = field(default_factory=dict)

    @classmethod
    def run(cls, profiles: tuple[Profile, ...]) -> "AccessibilityAudit":
        audit = cls()
        for profile in profiles:
            adaptations = interface_adaptations(AbilityProfile.from_profile(profile))
            if adaptations:
                audit.findings[profile.astro_id] = adaptations
        return audit

    def badge_swap_risk(self) -> list[str]:
        """Crew members at risk of misidentifying badges.

        A badge whose only identification is a visual display is
        unusable to a visually impaired crew member — precisely how
        A and B's badges got swapped for a day.
        """
        return [
            astro
            for astro, adaptations in self.findings.items()
            if any(a.device == "e-ink id display" for a in adaptations)
        ]
