"""Movement model: from schedule slots to frame-aligned trajectories.

Astronauts walk between rooms along door-constrained paths through the
main hall, and wander within rooms while working (more if energetic,
barely if reserved).  The impaired astronaut A moves slowly, keeps to
the middle of rooms, and "did not approach corners" — realized by a
shrunken wandering extent around the room center (paper Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import SimulationError
from repro.crew.astronaut import Profile
from repro.crew.schedule import Slot
from repro.crew.tasks import Activity
from repro.habitat.floorplan import OUTSIDE, FloorPlan
from repro.habitat.geometry import Point, Rect

#: Mean seconds between in-room position changes, by activity, for an
#: astronaut of mobility 1.0 (scaled by 1/mobility otherwise).
DWELL_MEAN_S: dict[Activity, float] = {
    Activity.WORK: 20.0,
    Activity.MEAL: 420.0,
    Activity.BRIEFING: 600.0,
    Activity.BREAK: 70.0,
    Activity.PERSONAL: 150.0,
    Activity.EXERCISE: 25.0,
    Activity.RESTROOM: 240.0,
    Activity.CONSOLATION: 600.0,
    Activity.EVA_PREP: 30.0,
    Activity.EVA_POST: 30.0,
    Activity.EVA: 35.0,
}

#: Margin kept from walls when sampling anchors (meters).
WALL_MARGIN_M = 0.5

#: Radius of the shared table area used during group gatherings.
GATHER_RADIUS_M = 1.1


@dataclass
class DayArrays:
    """Mutable per-day output arrays being filled by the movement model."""

    room: np.ndarray
    x: np.ndarray
    y: np.ndarray
    walking: np.ndarray
    activity: np.ndarray

    @classmethod
    def empty(cls, n_frames: int) -> "DayArrays":
        return cls(
            room=np.full(n_frames, OUTSIDE, dtype=np.int8),
            x=np.full(n_frames, np.nan, dtype=np.float32),
            y=np.full(n_frames, np.nan, dtype=np.float32),
            walking=np.zeros(n_frames, dtype=bool),
            activity=np.zeros(n_frames, dtype=np.int8),
        )


def wander_rect(profile: Profile, room_rect: Rect) -> Rect:
    """The sub-rectangle an astronaut wanders within.

    Centered on the room center and scaled by the profile's wander
    extent; impaired A (extent 0.35) thus never reaches corners.
    """
    inner = room_rect.shrink(WALL_MARGIN_M)
    cx, cy = inner.center
    half_w = inner.width / 2.0 * profile.wander_extent
    half_h = inner.height / 2.0 * profile.wander_extent
    return Rect(cx - half_w, cy - half_h, cx + half_w, cy + half_h)


def sample_anchor(profile: Profile, room_rect: Rect, activity: Activity,
                  rng: np.random.Generator) -> Point:
    """Sample a position to settle at for the current activity."""
    if activity.is_group:
        cx, cy = room_rect.center
        angle = rng.uniform(0.0, 2.0 * np.pi)
        radius = rng.uniform(0.3, GATHER_RADIUS_M)
        p = (cx + radius * np.cos(angle), cy + radius * np.sin(angle))
        return room_rect.shrink(WALL_MARGIN_M / 2).clamp(p)
    pt = wander_rect(profile, room_rect).sample(rng, 1)[0]
    return (float(pt[0]), float(pt[1]))


def _rasterize_walk(a: Point, waypoints: list[Point], speed: float, dt: float) -> np.ndarray:
    """Positions at each frame while walking a -> waypoints at ``speed``."""
    points = [a] + list(waypoints)
    xs, ys, lengths = [], [], []
    for p, q in zip(points, points[1:]):
        seg = float(np.hypot(q[0] - p[0], q[1] - p[1]))
        lengths.append(seg)
    total = sum(lengths)
    n_frames = max(1, int(np.ceil(total / (speed * dt))))
    dist_at = np.arange(1, n_frames + 1) * speed * dt
    dist_at = np.minimum(dist_at, total)
    out = np.empty((n_frames, 2), dtype=np.float64)
    cum = np.concatenate([[0.0], np.cumsum(lengths)])
    seg_idx = np.searchsorted(cum, dist_at, side="right") - 1
    seg_idx = np.clip(seg_idx, 0, len(lengths) - 1)
    for k in range(n_frames):
        i = seg_idx[k]
        seg_len = lengths[i] if lengths[i] > 0 else 1.0
        frac = (dist_at[k] - cum[i]) / seg_len
        p, q = points[i], points[i + 1]
        out[k, 0] = p[0] + frac * (q[0] - p[0])
        out[k, 1] = p[1] + frac * (q[1] - p[1])
    return out


class MovementModel:
    """Fills a day's trajectory arrays from a slot list."""

    def __init__(self, plan: FloorPlan, dt: float = 1.0):
        self.plan = plan
        self.dt = float(dt)

    def fill_day(
        self,
        profile: Profile,
        slots: list[Slot],
        t0: float,
        n_frames: int,
        rng: np.random.Generator,
        mobility_factor: float = 1.0,
    ) -> DayArrays:
        """Simulate one astronaut's day.

        ``mobility_factor`` is the scripted per-day modifier (calm day 3,
        post-incident bustle, famine lethargy).
        """
        arrays = DayArrays.empty(n_frames)
        plan, dt = self.plan, self.dt
        # Wake up in the bedroom.
        bedroom = plan.room("bedroom")
        cur_pos: Point = bedroom.rect.center
        cur_room_name = "bedroom"

        for slot in slots:
            i0 = int(round((slot.t0 - t0) / dt))
            i1 = int(round((slot.t1 - t0) / dt))
            i0, i1 = max(0, i0), min(n_frames, i1)
            if i1 <= i0:
                continue
            if slot.activity == Activity.ABSENT:
                arrays.activity[i0:i1] = int(Activity.ABSENT)
                cur_room_name = ""
                continue
            if slot.room is None:  # EVA on the surface
                self._fill_outside(arrays, profile, i0, i1, rng)
                cur_pos = plan.room("airlock").rect.center
                cur_room_name = "airlock"
                continue
            i = i0
            if slot.room != cur_room_name or not cur_room_name:
                origin = cur_room_name or "airlock"
                anchor = sample_anchor(profile, plan.room(slot.room).rect, slot.activity, rng)
                waypoints = plan.path(origin, slot.room, cur_pos, anchor)
                walk = _rasterize_walk(cur_pos, waypoints[1:], profile.walk_speed, dt)
                n_walk = min(len(walk), i1 - i)
                if n_walk > 0:
                    seg = walk[:n_walk]
                    arrays.x[i:i + n_walk] = seg[:, 0]
                    arrays.y[i:i + n_walk] = seg[:, 1]
                    arrays.room[i:i + n_walk] = plan.locate_many(seg)
                    arrays.walking[i:i + n_walk] = True
                    arrays.activity[i:i + n_walk] = int(Activity.TRANSIT)
                    cur_pos = (float(seg[-1, 0]), float(seg[-1, 1]))
                    i += n_walk
                if n_walk == len(walk):
                    cur_room_name = slot.room
                else:  # slot too short to arrive; stay mid-path
                    cur_room_name = plan.name_of(int(plan.locate(cur_pos)))
            if cur_room_name == slot.room:
                cur_pos = self._wander(
                    arrays, profile, slot, i, i1, cur_pos, rng, mobility_factor
                )
        return arrays

    # -- internals ------------------------------------------------------

    def _wander(
        self,
        arrays: DayArrays,
        profile: Profile,
        slot: Slot,
        i_start: int,
        i_end: int,
        pos: Point,
        rng: np.random.Generator,
        mobility_factor: float,
    ) -> Point:
        """Dwell/move loop inside the slot's room; returns final position."""
        plan, dt = self.plan, self.dt
        room = plan.room(slot.room)
        room_idx = room.index
        dwell_mean = DWELL_MEAN_S.get(slot.activity, 90.0)
        rate = max(profile.mobility * mobility_factor, 0.05)
        i = i_start
        while i < i_end:
            dwell_s = float(np.clip(rng.exponential(dwell_mean / rate), 8.0, 900.0))
            n_dwell = max(1, int(round(dwell_s / dt)))
            j = min(i + n_dwell, i_end)
            arrays.x[i:j] = pos[0]
            arrays.y[i:j] = pos[1]
            arrays.room[i:j] = room_idx
            arrays.activity[i:j] = int(slot.activity)
            i = j
            if i >= i_end:
                break
            target = self._distant_anchor(profile, room.rect, slot.activity, pos, rng)
            walk = _rasterize_walk(pos, [target], profile.walk_speed, dt)
            n_walk = min(len(walk), i_end - i)
            if n_walk <= 0:
                break
            seg = walk[:n_walk]
            arrays.x[i:i + n_walk] = seg[:, 0]
            arrays.y[i:i + n_walk] = seg[:, 1]
            arrays.room[i:i + n_walk] = room_idx
            arrays.walking[i:i + n_walk] = True
            arrays.activity[i:i + n_walk] = int(slot.activity)
            pos = (float(seg[-1, 0]), float(seg[-1, 1]))
            i += n_walk
        return pos

    def _distant_anchor(
        self,
        profile: Profile,
        room_rect: Rect,
        activity: Activity,
        pos: Point,
        rng: np.random.Generator,
        min_distance: float = 1.3,
        tries: int = 5,
    ) -> Point:
        """Sample a wander target a meaningful distance away.

        People cross the room to fetch a tool, not shuffle 20 cm; the
        minimum is capped by the wanderable area so constrained movers
        (A) are not forced beyond their comfortable extent.
        """
        allowed = wander_rect(profile, room_rect)
        cap = 0.7 * float(np.hypot(allowed.width, allowed.height))
        threshold = min(min_distance, cap)
        target = sample_anchor(profile, room_rect, activity, rng)
        for _ in range(tries):
            if np.hypot(target[0] - pos[0], target[1] - pos[1]) >= threshold:
                break
            target = sample_anchor(profile, room_rect, activity, rng)
        return target

    def _fill_outside(self, arrays: DayArrays, profile: Profile, i0: int, i1: int,
                      rng: np.random.Generator) -> None:
        """Fill an EVA window: on the regolith, outside badge coverage."""
        hangar = self.plan.hangar
        i = i0
        pos = hangar.center
        while i < i1:
            n_dwell = max(1, int(rng.exponential(DWELL_MEAN_S[Activity.EVA])))
            j = min(i + n_dwell, i1)
            arrays.x[i:j] = pos[0]
            arrays.y[i:j] = pos[1]
            arrays.room[i:j] = OUTSIDE
            arrays.activity[i:j] = int(Activity.EVA)
            i = j
            if i >= i1:
                break
            pt = hangar.shrink(0.5).sample(rng, 1)[0]
            pos = (float(pt[0]), float(pt[1]))
        if i1 > i0 and arrays.activity[i0] != int(Activity.EVA):
            raise SimulationError("EVA fill failed to cover its window")
