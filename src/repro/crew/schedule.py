"""The mission's strict daily schedule.

"All of the activities had been determined a priori and organized into a
strict and precise plan, divided into 30 min slots ... 14 h of daytime
[with] only two 30 min-long breaks [and] 1.5 h in total spent on eating
meals."  This module builds per-astronaut slot lists for each day:
shared meals and briefings, individual work blocks with partner-based
room assignment, EVAs, breaks (often skipped by absorbed office and
workshop workers, who then dash to the kitchen for water — the source of
the paper's dominant office->kitchen transition counts).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.config import MissionConfig
from repro.core.errors import ConfigError
from repro.core.units import HOUR, MINUTE, parse_hhmm
from repro.crew.roster import Roster
from repro.crew.tasks import Activity

#: Probability an office/workshop worker skips a scheduled break.
SKIP_BREAK_PROB = 0.8
#: Duration of the post-skip kitchen water dash.
WATER_DASH_S = 2 * MINUTE
#: Rooms whose work absorbs people into skipping breaks.
ABSORBING_ROOMS = ("office", "workshop")
#: Probability of an evening exercise session instead of late work.
EXERCISE_PROB = 0.3
#: EVA cadence: an EVA happens on days where ``day % EVA_PERIOD == EVA_PHASE``.
EVA_PERIOD = 3
EVA_PHASE = 0


@dataclass(frozen=True)
class Slot:
    """One contiguous scheduled activity: ``[t0, t1)`` seconds of day."""

    t0: float
    t1: float
    activity: Activity
    #: Room name, or ``None`` when outside the habitat (EVA surface work).
    room: str | None
    label: str = ""

    def __post_init__(self) -> None:
        if self.t1 <= self.t0:
            raise ConfigError(f"empty slot {self.label!r} [{self.t0}, {self.t1})")

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


@dataclass
class DaySchedule:
    """Per-astronaut slot lists for one mission day."""

    day: int
    start_s: float
    end_s: float
    slots: dict[str, list[Slot]] = field(default_factory=dict)

    def validate(self) -> None:
        """Check every astronaut's slots tile the daytime contiguously."""
        for astro, slots in self.slots.items():
            if not slots:
                raise ConfigError(f"{astro} has no slots on day {self.day}")
            if abs(slots[0].t0 - self.start_s) > 1e-6 or abs(slots[-1].t1 - self.end_s) > 1e-6:
                raise ConfigError(f"{astro} slots do not cover daytime on day {self.day}")
            for prev, cur in zip(slots, slots[1:]):
                if abs(prev.t1 - cur.t0) > 1e-6:
                    raise ConfigError(
                        f"{astro} has a gap/overlap at {prev.t1} on day {self.day}"
                    )

    def of(self, astro_id: str) -> list[Slot]:
        return self.slots[astro_id]


def override_slots(slots: list[Slot], t0: float, t1: float, activity: Activity,
                   room: str | None, label: str = "") -> list[Slot]:
    """Replace the window ``[t0, t1)`` of a slot list with one new slot.

    Used by the scripted-events layer (e.g., inserting the consolation
    meeting into everyone's afternoon).
    """
    if t1 <= t0:
        raise ConfigError("override window must be non-empty")
    out: list[Slot] = []
    inserted = False
    for slot in slots:
        if slot.t1 <= t0 or slot.t0 >= t1:
            out.append(slot)
            continue
        if slot.t0 < t0:
            out.append(replace(slot, t1=t0))
        if not inserted:
            out.append(Slot(t0, t1, activity, room, label))
            inserted = True
        if slot.t1 > t1:
            out.append(replace(slot, t0=t1))
    if not inserted:
        raise ConfigError("override window lies outside the schedule")
    return out


def _work_blocks(start: float) -> list[tuple[float, float, str]]:
    """The daily template relative to daytime start (07:00)."""
    t = start
    return [
        (t, t + 30 * MINUTE, "breakfast"),
        (t + 30 * MINUTE, t + 1.0 * HOUR, "briefing"),
        (t + 1.0 * HOUR, t + 3.5 * HOUR, "work1"),
        (t + 3.5 * HOUR, t + 4.0 * HOUR, "break1"),
        (t + 4.0 * HOUR, t + 5.5 * HOUR, "work2"),
        (t + 5.5 * HOUR, t + 6.0 * HOUR, "lunch"),
        (t + 6.0 * HOUR, t + 8.5 * HOUR, "work3"),
        (t + 8.5 * HOUR, t + 9.0 * HOUR, "break2"),
        (t + 9.0 * HOUR, t + 11.5 * HOUR, "work4"),
        (t + 11.5 * HOUR, t + 12.0 * HOUR, "dinner"),
        (t + 12.0 * HOUR, t + 13.5 * HOUR, "work5"),
        (t + 13.5 * HOUR, t + 14.0 * HOUR, "debrief"),
    ]


def _assign_work_rooms(
    roster: Roster,
    present: list[str],
    rng: np.random.Generator,
    carry: dict[str, str] | None = None,
    persistence: float = 0.55,
) -> dict[str, str]:
    """Assign each present astronaut a work room, pairing by affinity.

    With probability ``persistence`` an astronaut sticks with the room
    they worked the previous block (projects span blocks — this is what
    produces the paper's ~5 h office/workshop sessions); otherwise a
    sociable astronaut proposes co-work to a partner drawn by affinity,
    and accepted pairs share a room sampled from their combined
    preferences.
    """
    rooms: dict[str, str] = {}
    if carry:
        for astro in present:
            prev = carry.get(astro)
            if prev is not None and rng.random() < persistence:
                rooms[astro] = prev
    order = list(present)
    rng.shuffle(order)
    for astro in order:
        if astro in rooms:
            continue
        profile = roster.profile(astro)
        free = [o for o in order if o != astro and o not in rooms]
        partner = None
        if free and rng.random() < 0.8 * profile.sociability:
            weights = np.array([roster.pair_affinity(astro, o) for o in free])
            if weights.sum() > 0:
                candidate = free[int(rng.choice(len(free), p=weights / weights.sum()))]
                # Affinity steers who is asked; whether the candidate says
                # yes is mostly their own sociability (capped affinity
                # boost, so a solitary worker stays solitary even with a
                # close friend around -- friendship shows in chats, not
                # in every work block).
                accept = min(
                    1.0,
                    roster.profile(candidate).sociability
                    * min(roster.pair_affinity(astro, candidate), 1.5),
                )
                if rng.random() < accept:
                    partner = candidate
        if partner is not None:
            prefs: dict[str, float] = {}
            for member in (astro, partner):
                for room, w in roster.profile(member).work_rooms.items():
                    prefs[room] = prefs.get(room, 0.0) + w
            # Nobody co-works in the cramped storage module.
            if "storage" in prefs and len(prefs) > 1:
                del prefs["storage"]
            names = list(prefs)
            probs = np.array([prefs[n] for n in names])
            room = names[int(rng.choice(len(names), p=probs / probs.sum()))]
            rooms[astro] = rooms[partner] = room
        else:
            names = list(profile.work_rooms)
            probs = np.array([profile.work_rooms[n] for n in names])
            rooms[astro] = names[int(rng.choice(len(names), p=probs / probs.sum()))]
    return rooms


def _eva_pair(roster: Roster, present: list[str], day: int) -> tuple[str, ...]:
    """Deterministic EVA pair rotation over the present crew."""
    if len(present) < 2:
        return ()
    k = day % len(present)
    return (present[k], present[(k + 1) % len(present)])


def build_day_schedule(
    cfg: MissionConfig,
    roster: Roster,
    day: int,
    rng: np.random.Generator,
    absent: set[str] = frozenset(),
) -> DaySchedule:
    """Build one day's schedule for the whole crew.

    ``absent`` astronauts (C after the day-4 incident) receive a single
    ABSENT slot; scripted-event overrides are applied afterwards by
    :mod:`repro.crew.events_script`.
    """
    start = cfg.daytime_start_s
    end = start + cfg.daytime_s
    sched = DaySchedule(day=day, start_s=start, end_s=end)
    present = [a for a in roster.ids if a not in absent]
    template = _work_blocks(start)
    # Per-block room assignments, with cross-block persistence.
    block_rooms: dict[str, dict[str, str]] = {}
    carry: dict[str, str] | None = None
    for _, _, label in template:
        if label.startswith("work"):
            block_rooms[label] = _assign_work_rooms(roster, present, rng, carry)
            carry = block_rooms[label]
    eva_pair = _eva_pair(roster, present, day) if day % EVA_PERIOD == EVA_PHASE else ()

    for astro in roster.ids:
        if astro in absent:
            sched.slots[astro] = [Slot(start, end, Activity.ABSENT, None, "absent")]
            continue
        profile = roster.profile(astro)
        slots: list[Slot] = []
        # Break-skipping state: absorbed office/workshop workers keep the
        # same task through the break and the next block, then dash to
        # the kitchen for water ("people used to be absorbed in their
        # office/workshop work, forgot about breaks, and in the end had
        # to quickly supplement water in the kitchen").
        forced_room: str | None = None
        dash_pending = False
        last_work_room: str | None = None
        for t0, t1, label in template:
            if t0 >= end:
                break
            t1 = min(t1, end)
            if label in ("breakfast", "lunch", "dinner"):
                slots.append(Slot(t0, t1, Activity.MEAL, "kitchen", label))
                dash_pending = False  # already in the kitchen
            elif label in ("briefing", "debrief"):
                slots.append(Slot(t0, t1, Activity.BRIEFING, "office", label))
            elif label.startswith("break"):
                if last_work_room in ABSORBING_ROOMS and rng.random() < SKIP_BREAK_PROB:
                    slots.append(Slot(t0, t1, Activity.WORK, last_work_room, label + "-skipped"))
                    forced_room = last_work_room
                    dash_pending = True
                else:
                    social = rng.random() < profile.sociability
                    where = "kitchen" if social else "bedroom"
                    slots.append(Slot(t0, t1, Activity.BREAK, where, label))
            elif label == "work1" and astro in eva_pair:
                third = (t1 - t0) / 5.0
                slots.append(Slot(t0, t0 + 0.8 * third, Activity.EVA_PREP, "airlock", "eva-prep"))
                slots.append(Slot(t0 + 0.8 * third, t1 - 0.8 * third, Activity.EVA, None, "eva"))
                slots.append(Slot(t1 - 0.8 * third, t1, Activity.EVA_POST, "airlock", "eva-post"))
                last_work_room = "airlock"
            elif label == "work5":
                if rng.random() < EXERCISE_PROB:
                    mid = t0 + (t1 - t0) / 2.0
                    slots.append(Slot(t0, mid, Activity.EXERCISE, "main", "exercise"))
                    slots.append(Slot(mid, t1, Activity.PERSONAL, "bedroom", "personal"))
                else:
                    room = block_rooms[label][astro]
                    slots.append(Slot(t0, t1, Activity.WORK, room, label))
                    last_work_room = room
            else:  # regular work block
                room = forced_room if forced_room is not None else block_rooms[label][astro]
                forced_room = None
                if dash_pending:
                    slots.append(Slot(t0, t1 - WATER_DASH_S, Activity.WORK, room, label))
                    slots.append(Slot(t1 - WATER_DASH_S, t1, Activity.BREAK, "kitchen", "water-dash"))
                    dash_pending = False
                else:
                    slots.append(Slot(t0, t1, Activity.WORK, room, label))
                last_work_room = room
        sched.slots[astro] = slots
    sched.validate()
    return sched


def group_windows(sched: DaySchedule, activity: Activity) -> list[tuple[float, float, str]]:
    """Windows (t0, t1, label) during which a given group activity is
    scheduled (taken from the first present astronaut's slots)."""
    for slots in sched.slots.values():
        windows = [(s.t0, s.t1, s.label) for s in slots if s.activity == activity]
        if windows:
            return windows
    return []


def scheduled_meal_times(cfg: MissionConfig) -> dict[str, float]:
    """Canonical meal start times (seconds of day) from the template."""
    start = cfg.daytime_start_s
    return {
        "breakfast": start,
        "lunch": start + 5.5 * HOUR,
        "dinner": start + 11.5 * HOUR,
    }


def lunch_time_s(cfg: MissionConfig) -> float:
    """Lunch start (12:30 with the default 07:00 daytime start)."""
    return scheduled_meal_times(cfg)["lunch"]


__all__ = [
    "DaySchedule",
    "Slot",
    "build_day_schedule",
    "group_windows",
    "lunch_time_s",
    "override_slots",
    "parse_hhmm",
    "scheduled_meal_times",
]
