"""Conversation model: who speaks, when, and how loudly.

Conversations happen between co-located astronauts and follow the talk
regime of the ongoing activity (meals are chatty, the consolation
meeting was "clearly quieter than ... lunch").  Within a conversation
burst, speakers alternate in turns drawn by talkativeness — this is what
makes C's voice "dominate during meetings".

The model also emits the assistive screen-reader (TTS) audio that
accompanied impaired astronaut A's office work; the paper had to teach
its conversation analysis "to not be misled by a computer program
reading out texts for A", and so does ours.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crew.astronaut import Profile
from repro.crew.tasks import SILENT_ACTIVITIES, Activity, talk_regime

#: TTS regime for the impaired astronaut's screen reader.
TTS_DUTY = 0.35
TTS_BURST_MEAN_S = 22.0
TTS_LOUDNESS_DB = 58.0
#: Rooms where the screen reader is in use.
TTS_ROOMS = ("office", "biolab")

#: Ignore co-location segments shorter than this (people passing through).
MIN_SEGMENT_S = 5.0

#: Speaker turn length bounds within a burst, seconds.
TURN_MIN_S, TURN_MAX_S = 2.0, 9.0


@dataclass
class SpeechArrays:
    """Per-crew speech output for one day."""

    speaking: np.ndarray        # (crew, frames) bool
    loudness: np.ndarray        # (crew, frames) float32, dB SPL at 1 m
    machine_speech: np.ndarray  # (crew, frames) bool


class ConversationModel:
    """Generates speech from co-location and activity ground truth."""

    def __init__(self, profiles: tuple[Profile, ...], dt: float = 1.0):
        self.profiles = profiles
        self.dt = float(dt)

    def generate(
        self,
        rooms: np.ndarray,
        activities: np.ndarray,
        rng: np.random.Generator,
        talk_factor: float = 1.0,
    ) -> SpeechArrays:
        """Build speech arrays for one day.

        Args:
            rooms: ``(crew, frames)`` ground-truth room indices.
            activities: ``(crew, frames)`` activity codes.
            rng: this component's random stream.
            talk_factor: scripted day-level mood multiplier on talk duty
                (the paper's Fig. 6 decline and the famine/reprimand
                collapse enter here).

        Returns:
            :class:`SpeechArrays` for the whole crew.
        """
        n_crew, n_frames = rooms.shape
        out = SpeechArrays(
            speaking=np.zeros((n_crew, n_frames), dtype=bool),
            loudness=np.zeros((n_crew, n_frames), dtype=np.float32),
            machine_speech=np.zeros((n_crew, n_frames), dtype=bool),
        )
        for seg_start, seg_end in self._segments(rooms, activities):
            if (seg_end - seg_start) * self.dt < MIN_SEGMENT_S:
                continue
            self._fill_segment(out, rooms, activities, seg_start, seg_end, rng, talk_factor)
        self._fill_tts(out, rooms, activities, rng)
        return out

    # -- internals -------------------------------------------------------

    def _segments(self, rooms: np.ndarray, activities: np.ndarray | None = None) -> list[tuple[int, int]]:
        """Frame ranges over which rooms (and activities) are constant.

        Activity changes split segments too: six people switching from
        TRANSIT to MEAL the moment they reach the kitchen table must
        start a fresh (talkative) segment even though no room changed.
        """
        n_frames = rooms.shape[1]
        if n_frames == 0:
            return []
        changed = (rooms[:, 1:] != rooms[:, :-1]).any(axis=0)
        if activities is not None:
            changed |= (activities[:, 1:] != activities[:, :-1]).any(axis=0)
        boundaries = np.concatenate([[0], np.flatnonzero(changed) + 1, [n_frames]])
        return list(zip(boundaries[:-1], boundaries[1:]))

    def _fill_segment(
        self,
        out: SpeechArrays,
        rooms: np.ndarray,
        activities: np.ndarray,
        s: int,
        e: int,
        rng: np.random.Generator,
        talk_factor: float,
    ) -> None:
        room_now = rooms[:, s]
        act_now = activities[:, s]
        for room in np.unique(room_now):
            if room < 0:
                continue
            members = np.flatnonzero(
                (room_now == room)
                & ~np.isin(act_now, [int(a) for a in SILENT_ACTIVITIES])
            )
            if members.size < 2:
                continue
            activity = Activity(int(act_now[members[0]]))
            duty, burst_mean, loud_db = talk_regime(activity)
            # Chattier groups chat more: scale duty by mean talkativeness
            # (a group around C barely stops talking).
            mean_talk = float(
                np.mean([self.profiles[m].talkativeness for m in members])
            )
            duty = min(0.95, duty * talk_factor * (0.55 + 0.9 * mean_talk))
            if duty <= 0.0:
                continue
            self._burst_process(out, members, s, e, duty, burst_mean, loud_db, rng)

    def _burst_process(
        self,
        out: SpeechArrays,
        members: np.ndarray,
        s: int,
        e: int,
        duty: float,
        burst_mean_s: float,
        loud_db: float,
        rng: np.random.Generator,
    ) -> None:
        """Alternating burst/gap process with talkativeness-weighted turns."""
        weights = np.array([self.profiles[m].talkativeness for m in members])
        weights = weights / weights.sum()
        gap_mean_s = burst_mean_s * (1.0 - duty) / max(duty, 1e-6)
        t = s
        # Randomize the phase: start mid-gap half the time.
        if rng.random() > duty:
            t += int(rng.exponential(gap_mean_s) / self.dt)
        while t < e:
            burst_frames = max(1, int(rng.exponential(burst_mean_s) / self.dt))
            burst_end = min(t + burst_frames, e)
            while t < burst_end:
                turn_frames = max(1, int(rng.uniform(TURN_MIN_S, TURN_MAX_S) / self.dt))
                turn_end = min(t + turn_frames, burst_end)
                speaker = members[int(rng.choice(members.size, p=weights))]
                out.speaking[speaker, t:turn_end] = True
                out.loudness[speaker, t:turn_end] = loud_db + rng.normal(0.0, 1.5)
                t = turn_end
            t = burst_end + max(1, int(rng.exponential(gap_mean_s) / self.dt))

    def _fill_tts(
        self,
        out: SpeechArrays,
        rooms: np.ndarray,
        activities: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        """Screen-reader audio accompanying impaired astronauts' work."""
        from repro.habitat.rooms import ROOM_NAMES  # index order matches plan

        tts_room_idx = [ROOM_NAMES.index(r) for r in TTS_ROOMS]
        for row, profile in enumerate(self.profiles):
            if not profile.impaired:
                continue
            eligible = np.isin(rooms[row], tts_room_idx) & (
                activities[row] == int(Activity.WORK)
            )
            if not eligible.any():
                continue
            gap_mean_s = TTS_BURST_MEAN_S * (1.0 - TTS_DUTY) / TTS_DUTY
            n = rooms.shape[1]
            t = int(rng.exponential(gap_mean_s) / self.dt)
            while t < n:
                burst = max(1, int(rng.exponential(TTS_BURST_MEAN_S) / self.dt))
                end = min(t + burst, n)
                window = eligible[t:end]
                out.machine_speech[row, t:end] = window
                t = end + max(1, int(rng.exponential(gap_mean_s) / self.dt))
