"""Mission-level behavior orchestration.

``simulate_mission`` ties the crew substrate together: for every day it
builds the schedule, injects scripted events, adds micro-interruptions
(restroom visits, the Commander's supervision rounds), runs the movement
model, and generates conversations — yielding a complete
:class:`~repro.crew.trace.MissionTruth`.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import MissionConfig
from repro.core.rng import RngRegistry
from repro.core.units import MINUTE
from repro.crew.conversation import ConversationModel
from repro.crew.events_script import (
    DECEASED,
    apply_scripted_events,
    day_mobility_factor,
    day_talk_factor,
    deceased_absent,
)
from repro.crew.movement import MovementModel
from repro.crew.roster import Roster, icares_roster
from repro.crew.schedule import DaySchedule, Slot, build_day_schedule, override_slots
from repro.crew.tasks import Activity
from repro.crew.trace import DayTrace, MissionTruth
from repro.habitat.floorplan import FloorPlan, lunares_floorplan
from repro.obs import span

#: Restroom visits per astronaut per day (mean of a Poisson draw).
RESTROOM_VISITS_MEAN = 2.5
RESTROOM_MIN_S, RESTROOM_MAX_S = 3 * MINUTE, 5 * MINUTE

#: Supervision rounds by supervising astronauts (the Commander).
SUPERVISION_VISITS_PER_DAY = 9
SUPERVISION_MIN_S, SUPERVISION_MAX_S = 5 * MINUTE, 11 * MINUTE

#: Social/consultation visits: astronauts drop by a colleague's room
#: (mean visits per day, scaled by sociability; targets drawn by affinity).
SOCIAL_VISITS_MEAN = 1.6
SOCIAL_VISIT_MIN_S, SOCIAL_VISIT_MAX_S = 5 * MINUTE, 12 * MINUTE

#: Private chats: a pair slips away to talk tete-a-tete.  Each pair's
#: daily chat count is Poisson with rate proportional to squared
#: affinity, so close pairs (A-F) chat far more than distant ones (D-E)
#: -- the source of the paper's "~5 h more private talk".
PRIVATE_CHAT_RATE_PER_AFFINITY2 = 0.38
PRIVATE_CHAT_MIN_S, PRIVATE_CHAT_MAX_S = 10 * MINUTE, 22 * MINUTE

#: Water trips: absorbed office/workshop workers dash to the kitchen to
#: rehydrate (mean extra trips per day per absorbed worker).
WATER_TRIPS_MEAN = 1.6
WATER_TRIP_MIN_S, WATER_TRIP_MAX_S = 1.5 * MINUTE, 4 * MINUTE


def simulate_mission(
    cfg: MissionConfig,
    roster: Roster | None = None,
    plan: FloorPlan | None = None,
    rngs: RngRegistry | None = None,
) -> MissionTruth:
    """Simulate the full mission and return its ground truth.

    Deterministic given ``cfg.seed`` (or the supplied registry).
    """
    roster = roster if roster is not None else icares_roster(cfg.crew_size)
    plan = plan if plan is not None else lunares_floorplan()
    rngs = rngs if rngs is not None else RngRegistry(cfg.seed)

    truth = MissionTruth(cfg=cfg, roster=roster, plan=plan)
    movement = MovementModel(plan, dt=cfg.frame_dt)
    conversation = ConversationModel(roster.profiles, dt=cfg.frame_dt)
    n_frames = cfg.frames_per_day
    t0 = cfg.daytime_start_s

    with span("crew.simulate_mission", days=cfg.days, crew=roster.size):
        for day in range(1, cfg.days + 1):
            _simulate_day(
                truth, day, cfg, roster, rngs, movement, conversation, t0, n_frames
            )
    return truth


def _simulate_day(truth, day, cfg, roster, rngs, movement, conversation,
                  t0, n_frames) -> None:
    """Build one day of ground truth (schedule, movement, conversation)."""
    with span("crew.day", day=day):
        with span("crew.schedule", day=day):
            sched_rng = rngs.get(f"crew.schedule.day{day}")
            absent = {DECEASED} if deceased_absent(cfg, day) else set()
            sched = build_day_schedule(cfg, roster, day, sched_rng, absent)
            truth.events.extend(apply_scripted_events(sched, cfg, roster, day))
            _insert_restroom_visits(sched, roster, rngs.get(f"crew.restroom.day{day}"))
            _insert_supervision_rounds(sched, roster, rngs.get(f"crew.supervision.day{day}"))
            _insert_social_visits(sched, roster, rngs.get(f"crew.visits.day{day}"))
            _insert_private_chats(sched, roster, rngs.get(f"crew.chats.day{day}"))
            _insert_water_trips(sched, roster, rngs.get(f"crew.water.day{day}"))
            truth.schedules[day] = sched

        mobility_factor = day_mobility_factor(cfg, day)
        day_arrays = {}
        with span("crew.movement", day=day):
            for astro in roster.ids:
                move_rng = rngs.get(f"crew.movement.{astro}.day{day}")
                day_arrays[astro] = movement.fill_day(
                    roster.profile(astro), sched.of(astro), t0, n_frames, move_rng,
                    mobility_factor=mobility_factor,
                )

        with span("crew.conversation", day=day):
            rooms = np.vstack([day_arrays[a].room for a in roster.ids])
            activities = np.vstack([day_arrays[a].activity for a in roster.ids])
            speech = conversation.generate(
                rooms, activities, rngs.get(f"crew.conversation.day{day}"),
                talk_factor=day_talk_factor(cfg, day),
            )

        for row, astro in enumerate(roster.ids):
            arrays = day_arrays[astro]
            truth.traces[(astro, day)] = DayTrace(
                astro_id=astro,
                day=day,
                t0=t0,
                dt=cfg.frame_dt,
                room=arrays.room,
                x=arrays.x,
                y=arrays.y,
                walking=arrays.walking,
                speaking=speech.speaking[row],
                loudness=speech.loudness[row],
                machine_speech=speech.machine_speech[row],
                activity=arrays.activity,
            )


# -- micro-interruptions ---------------------------------------------------


def _workable_windows(slots: list[Slot], min_len_s: float) -> list[Slot]:
    """Work slots long enough to host an interruption."""
    return [
        s for s in slots
        if s.activity == Activity.WORK and s.room is not None and s.duration >= min_len_s
    ]


def _insert_restroom_visits(sched: DaySchedule, roster: Roster,
                            rng: np.random.Generator) -> None:
    """Scatter short restroom visits through each astronaut's work slots."""
    for astro in roster.ids:
        slots = sched.slots[astro]
        if all(s.activity == Activity.ABSENT for s in slots):
            continue
        n_visits = int(rng.poisson(RESTROOM_VISITS_MEAN))
        for _ in range(n_visits):
            hosts = _workable_windows(sched.slots[astro], 20 * MINUTE)
            if not hosts:
                break
            host = hosts[int(rng.integers(len(hosts)))]
            duration = rng.uniform(RESTROOM_MIN_S, RESTROOM_MAX_S)
            start = rng.uniform(host.t0 + MINUTE, host.t1 - duration - MINUTE)
            sched.slots[astro] = override_slots(
                sched.slots[astro], start, start + duration,
                Activity.RESTROOM, "restroom", "restroom",
            )


def _room_of(slots: list[Slot], t: float) -> str | None:
    """Room an astronaut is scheduled in at time ``t``."""
    for slot in slots:
        if slot.t0 <= t < slot.t1:
            return slot.room
    return None


def _insert_social_visits(sched: DaySchedule, roster: Roster,
                          rng: np.random.Generator) -> None:
    """Astronauts drop by colleagues' rooms to consult or socialize.

    Targets are drawn by pair affinity, so the knowledgeable and
    well-liked (C) attract visitors, and close pairs (A-F) see each
    other far more than distant ones (D-E).
    """
    present = [
        a for a in roster.ids
        if not all(s.activity == Activity.ABSENT for s in sched.slots[a])
    ]
    for astro in present:
        profile = roster.profile(astro)
        n_visits = int(rng.poisson(SOCIAL_VISITS_MEAN * profile.sociability))
        for _ in range(n_visits):
            hosts = _workable_windows(sched.slots[astro], 25 * MINUTE)
            if not hosts:
                break
            host = hosts[int(rng.integers(len(hosts)))]
            duration = rng.uniform(SOCIAL_VISIT_MIN_S, SOCIAL_VISIT_MAX_S)
            start = rng.uniform(host.t0 + MINUTE, host.t1 - duration - MINUTE)
            others = [o for o in present if o != astro]
            weights = np.array([roster.pair_affinity(astro, o) for o in others])
            if weights.sum() <= 0:
                continue
            target = others[int(rng.choice(len(others), p=weights / weights.sum()))]
            room = _room_of(sched.slots[target], start)
            if room is None or room == host.room:
                continue
            sched.slots[astro] = override_slots(
                sched.slots[astro], start, start + duration,
                Activity.WORK, room, "visit",
            )


def _insert_private_chats(sched: DaySchedule, roster: Roster,
                          rng: np.random.Generator) -> None:
    """Pairs retreat for short private conversations.

    The pair slips to the kitchen ("favored by the crew as the cosiest
    room") or a bedroom corner; both schedules get the same override.
    """
    from itertools import combinations

    present = [
        a for a in roster.ids
        if not all(s.activity == Activity.ABSENT for s in sched.slots[a])
    ]
    for a, b in combinations(present, 2):
        rate = PRIVATE_CHAT_RATE_PER_AFFINITY2 * roster.pair_affinity(a, b) ** 2
        for _ in range(int(rng.poisson(rate))):
            hosts = _workable_windows(sched.slots[a], 25 * MINUTE)
            if not hosts:
                continue
            host = hosts[int(rng.integers(len(hosts)))]
            duration = rng.uniform(PRIVATE_CHAT_MIN_S, PRIVATE_CHAT_MAX_S)
            start = rng.uniform(host.t0 + MINUTE, host.t1 - duration - MINUTE)
            # The partner must also be in interruptible work at that moment.
            partner_slot = next(
                (s for s in sched.slots[b] if s.t0 <= start and start + duration <= s.t1),
                None,
            )
            if partner_slot is None or partner_slot.activity != Activity.WORK:
                continue
            room = "kitchen" if rng.random() < 0.3 else "bedroom"
            for astro in (a, b):
                sched.slots[astro] = override_slots(
                    sched.slots[astro], start, start + duration,
                    Activity.BREAK, room, "private-chat",
                )


def _insert_water_trips(sched: DaySchedule, roster: Roster,
                        rng: np.random.Generator) -> None:
    """Quick kitchen dashes by absorbed office/workshop workers.

    These dominate the paper's Fig. 2: office->kitchen (and back) are
    the most frequent passages because people "forgot about breaks and
    in the end had to quickly supplement water in the kitchen".
    """
    from repro.crew.schedule import ABSORBING_ROOMS

    for astro in roster.ids:
        slots = sched.slots[astro]
        if all(s.activity == Activity.ABSENT for s in slots):
            continue
        n_trips = int(rng.poisson(WATER_TRIPS_MEAN))
        for _ in range(n_trips):
            hosts = [
                s for s in _workable_windows(sched.slots[astro], 25 * MINUTE)
                if s.room in ABSORBING_ROOMS
            ]
            if not hosts:
                break
            host = hosts[int(rng.integers(len(hosts)))]
            duration = rng.uniform(WATER_TRIP_MIN_S, WATER_TRIP_MAX_S)
            start = rng.uniform(host.t0 + MINUTE, host.t1 - duration - MINUTE)
            sched.slots[astro] = override_slots(
                sched.slots[astro], start, start + duration,
                Activity.BREAK, "kitchen", "water-trip",
            )


def _insert_supervision_rounds(sched: DaySchedule, roster: Roster,
                               rng: np.random.Generator) -> None:
    """Supervising astronauts drop in on colleagues' work rooms.

    This is what makes the Commander "the person who was the most
    central and available to the others" (Table I).
    """
    for astro in roster.ids:
        if not roster.profile(astro).supervises:
            continue
        slots = sched.slots[astro]
        if all(s.activity == Activity.ABSENT for s in slots):
            continue
        for _ in range(SUPERVISION_VISITS_PER_DAY):
            hosts = _workable_windows(sched.slots[astro], 25 * MINUTE)
            if not hosts:
                break
            host = hosts[int(rng.integers(len(hosts)))]
            duration = rng.uniform(SUPERVISION_MIN_S, SUPERVISION_MAX_S)
            start = rng.uniform(host.t0 + MINUTE, host.t1 - duration - MINUTE)
            occupied = {
                room for other in roster.ids if other != astro
                for room in [_room_of(sched.slots[other], start)]
                if room is not None and room != host.room
            }
            if not occupied:
                continue
            target = sorted(occupied)[int(rng.integers(len(occupied)))]
            sched.slots[astro] = override_slots(
                sched.slots[astro], start, start + duration,
                Activity.WORK, target, "supervision",
            )
