"""Crew substrate: agent-based behavior simulation of the ICAres-1 crew.

Personality profiles, the six-astronaut roster, the mission's strict
30-minute-slot schedule, movement and conversation models, and the
scripted atypical events (the death of astronaut C, the famine, the
mission-control reprimand).  The output is a *ground-truth* mission
trace that the badge/radio layer degrades into sensor observations.
"""

from repro.crew.astronaut import Profile
from repro.crew.behavior import simulate_mission
from repro.crew.roster import CREW_IDS, icares_roster, Roster
from repro.crew.schedule import DaySchedule, Slot, build_day_schedule
from repro.crew.tasks import Activity
from repro.crew.trace import DayTrace, MissionTruth

__all__ = [
    "Activity",
    "CREW_IDS",
    "DaySchedule",
    "DayTrace",
    "MissionTruth",
    "Profile",
    "Roster",
    "Slot",
    "build_day_schedule",
    "icares_roster",
    "simulate_mission",
]
