"""Scripted mission events and their behavioral consequences.

ICAres-1 deliberately injected atypical situations: astronaut C left the
habitat "virtually dead" on day 4 (followed by an unplanned consolation
meeting in the kitchen, "clearly quieter than ... lunch"), an extreme
food shortage was announced on day 11, and on day 12 delayed mission-
control instructions contradicted the crew's action and earned them a
reprimand.  The paper's Figures 4-6 visibly carry these events; this
module injects them into the schedule and the day-level mood factors.
"""

from __future__ import annotations

from repro.core.config import MissionConfig
from repro.core.units import MINUTE, parse_hhmm
from repro.crew.roster import Roster
from repro.crew.schedule import DaySchedule, override_slots
from repro.crew.tasks import Activity
from repro.crew.trace import EventRecord

#: The astronaut who leaves the habitat on the death day.
DECEASED = "C"

#: Baseline talk-mood decline across the mission ("they talked less the
#: closer the mission end was"): linear from START at day 2 to END at day 14.
TALK_DECLINE_START = 1.0
TALK_DECLINE_END = 0.50
FAMINE_TALK_FACTOR = 0.22
REPRIMAND_TALK_FACTOR = 0.18
GRIEF_TALK_FACTOR = 0.80

CALM_DAY = 3
CALM_MOBILITY_FACTOR = 0.85
POST_DEATH_MOBILITY_FACTOR = 1.08
FAMINE_MOBILITY_FACTOR = 0.85


def deceased_absent(cfg: MissionConfig, day: int) -> bool:
    """Whether astronaut C is absent for the *whole* of ``day``."""
    return cfg.event_active("death_day") and day > cfg.events.death_day


def day_talk_factor(cfg: MissionConfig, day: int) -> float:
    """Scripted multiplier on conversation duty for a day."""
    if cfg.days > 2:
        frac = (day - 2) / max(cfg.days - 2, 1)
        factor = TALK_DECLINE_START + (TALK_DECLINE_END - TALK_DECLINE_START) * max(frac, 0.0)
    else:
        factor = TALK_DECLINE_START
    if cfg.events is not None:
        if cfg.event_active("famine_day") and day == cfg.events.famine_day:
            factor = min(factor, FAMINE_TALK_FACTOR)
        if cfg.event_active("reprimand_day") and day == cfg.events.reprimand_day:
            factor = min(factor, REPRIMAND_TALK_FACTOR)
        if cfg.event_active("death_day") and day == cfg.events.death_day + 1:
            factor *= GRIEF_TALK_FACTOR
    return factor


def day_mobility_factor(cfg: MissionConfig, day: int) -> float:
    """Scripted multiplier on in-room wandering rate for a day."""
    factor = 1.0
    if day == CALM_DAY:
        factor *= CALM_MOBILITY_FACTOR
    if cfg.events is not None:
        if cfg.event_active("death_day") and day > cfg.events.death_day:
            factor *= POST_DEATH_MOBILITY_FACTOR
        if cfg.event_active("famine_day") and day >= cfg.events.famine_day:
            factor *= FAMINE_MOBILITY_FACTOR
    return factor


def apply_scripted_events(
    sched: DaySchedule, cfg: MissionConfig, roster: Roster, day: int
) -> list[EventRecord]:
    """Mutate a day's schedule for scripted events; return event records."""
    records: list[EventRecord] = []
    events = cfg.events
    if events is None:
        return records

    day_end = sched.end_s
    if cfg.event_active("death_day") and day == events.death_day and DECEASED in sched.slots:
        death_s = min(parse_hhmm(events.death_time), day_end - MINUTE)
        conso_s = parse_hhmm(events.consolation_time)
        conso_e = min(conso_s + events.consolation_duration_s, day_end)
        # C suits up for the fatal EVA, then is gone.
        prep_s = max(sched.start_s, death_s - 30 * MINUTE)
        if prep_s < death_s:
            sched.slots[DECEASED] = override_slots(
                sched.slots[DECEASED], prep_s, death_s, Activity.EVA_PREP, "airlock", "fatal-eva-prep"
            )
        sched.slots[DECEASED] = override_slots(
            sched.slots[DECEASED], death_s, day_end, Activity.ABSENT, None, "deceased"
        )
        records.append(EventRecord(day, death_s, "death", {"astronaut": DECEASED}))
        # The unplanned consolation meeting: everyone else in the kitchen.
        if conso_s < conso_e:
            for astro in roster.ids:
                if astro == DECEASED:
                    continue
                sched.slots[astro] = override_slots(
                    sched.slots[astro], conso_s, conso_e,
                    Activity.CONSOLATION, "kitchen", "consolation",
                )
            records.append(EventRecord(day, conso_s, "consolation", {"until": conso_e}))

    if cfg.event_active("famine_day") and day == events.famine_day:
        records.append(EventRecord(day, sched.start_s, "famine", {"ration_kcal": 500}))
    if cfg.event_active("reprimand_day") and day == events.reprimand_day:
        records.append(EventRecord(day, sched.start_s + 7 * 3600.0, "reprimand", {}))
    return records
