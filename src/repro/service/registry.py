"""Durable mission registry: the service's source of truth.

One SQLite database (WAL journal mode, ``synchronous=FULL``) holds every
submission the fleet service has ever accepted, keyed by the
content-addressed submission fingerprint
(:func:`repro.experiments.submission.submission_fingerprint`).  The
registry is what makes the service survive ``kill -9``:

* **exactly-once admission** — the fingerprint is the primary key, so a
  duplicate submission *cannot* create a second job; it bumps the
  original's ``submit_count`` and returns the existing record
  (``service.deduped``).
* **monotonic state machine** — ``queued → leased → running →
  done | failed | dead``; ``failed`` requeues (with backoff) until the
  retry budget is spent, ``done``/``dead`` are terminal.  Every
  transition is a guarded SQL ``UPDATE ... WHERE state IN (...) AND
  lease_token = ?`` inside an immediate transaction, committed —
  durably, thanks to ``synchronous=FULL`` — *before* the caller
  acknowledges anything, so a crash can lose at most work, never state.
* **leases, not locks** — a worker owns a job through a random lease
  token with a heartbeat-extended deadline.  A lease whose deadline
  passes (holder killed, hung, or partitioned) is requeued against the
  retry budget; a stale holder's late ``complete()``/``fail()`` is
  rejected by the token guard, so a job can never be double-acknowledged.
* **dead letters, never silence** — a job that exhausts its budget moves
  to ``dead`` *and* into a ``dead_letters`` table with its last error,
  mirroring the reliable bus's DLQ (:mod:`repro.support.reliable`).

Clients in other processes open the same file; SQLite's locking plus the
guarded transitions make every operation linearizable.  All timestamps
are caller-supplied (``now``), keeping the state machine testable
without clock patching.
"""

from __future__ import annotations

import json
import secrets
import sqlite3
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional

from repro.exec import integrity
from repro.obs import _state as _obs
from repro.obs import get_logger
from repro.obs import metrics as _metrics
from repro.service.config import DEFAULT_QUEUE_DEPTH
from repro.service.errors import (
    QueueFullError,
    RegistryUnavailable,
    StateTransitionError,
    UnknownJobError,
)
from repro.service.queue import ACTIVE_STATES

log = get_logger("repro.service.registry")

#: Every legal source → destination edge of the job state machine.
VALID_TRANSITIONS = {
    "queued": ("leased",),
    "failed": ("leased", "dead"),
    "leased": ("running", "queued", "failed", "dead"),
    "running": ("done", "queued", "failed", "dead"),
    "done": (),
    "dead": (),
}

TERMINAL_STATES = ("done", "dead")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    fingerprint    TEXT PRIMARY KEY,
    job_id         TEXT NOT NULL UNIQUE,
    tenant         TEXT NOT NULL DEFAULT '',
    quality        TEXT NOT NULL DEFAULT 'auto',
    config         TEXT NOT NULL,
    state          TEXT NOT NULL,
    attempts       INTEGER NOT NULL DEFAULT 0,
    max_attempts   INTEGER NOT NULL,
    submit_count   INTEGER NOT NULL DEFAULT 1,
    completions    INTEGER NOT NULL DEFAULT 0,
    lease_token    TEXT,
    lease_owner    TEXT,
    lease_pid      INTEGER,
    leased_at      REAL,
    lease_deadline REAL,
    not_before     REAL NOT NULL DEFAULT 0,
    submitted_at   REAL NOT NULL,
    finished_at    REAL,
    result_path    TEXT,
    result_digest  TEXT,
    error          TEXT
);
CREATE INDEX IF NOT EXISTS jobs_by_state ON jobs (state, not_before, submitted_at);
CREATE TABLE IF NOT EXISTS dead_letters (
    job_id      TEXT NOT NULL,
    fingerprint TEXT NOT NULL,
    tenant      TEXT NOT NULL DEFAULT '',
    config      TEXT NOT NULL,
    attempts    INTEGER NOT NULL,
    error       TEXT,
    died_at     REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS transitions (
    job_id TEXT NOT NULL,
    at     REAL NOT NULL,
    src    TEXT NOT NULL,
    dst    TEXT NOT NULL,
    detail TEXT
);
CREATE TABLE IF NOT EXISTS probes (
    owner      TEXT PRIMARY KEY,
    pid        INTEGER NOT NULL,
    state      TEXT NOT NULL,
    updated_at REAL NOT NULL,
    detail     TEXT
);
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""

_JOB_COLUMNS = (
    "fingerprint", "job_id", "tenant", "quality", "config", "state",
    "attempts", "max_attempts", "submit_count", "completions",
    "lease_token", "lease_owner", "lease_pid", "leased_at", "lease_deadline",
    "not_before", "submitted_at", "finished_at", "result_path",
    "result_digest", "error",
)


@dataclass(frozen=True)
class JobRecord:
    """One registry row, as plain data."""

    fingerprint: str
    job_id: str
    tenant: str
    quality: str
    config: dict
    state: str
    attempts: int
    max_attempts: int
    submit_count: int
    completions: int
    lease_token: Optional[str]
    lease_owner: Optional[str]
    lease_pid: Optional[int]
    leased_at: Optional[float]
    lease_deadline: Optional[float]
    not_before: float
    submitted_at: float
    finished_at: Optional[float]
    result_path: Optional[str]
    result_digest: Optional[str]
    error: Optional[str]

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self) -> dict:
        out = {name: getattr(self, name) for name in _JOB_COLUMNS}
        return out


def _record(row) -> JobRecord:
    data = dict(zip(_JOB_COLUMNS, row))
    data["config"] = json.loads(data["config"])
    return JobRecord(**data)


def _count_service(name: str, help_: str, tenant: str, n: float = 1) -> None:
    if _obs.enabled:
        _metrics.counter(f"service.{name}", help_).inc(n, tenant=tenant)


class MissionRegistry:
    """Durable job store shared by the service and its clients.

    Thread-safe within a process (one connection behind a lock) and
    multi-process-safe across processes (SQLite WAL + immediate
    transactions + token-guarded transitions).
    """

    def __init__(self, conn: sqlite3.Connection, path: Path):
        self._conn = conn
        self._lock = threading.RLock()
        self.path = path

    # -- lifecycle -------------------------------------------------------

    @classmethod
    def open(cls, path: str | Path, *, create: bool = False,
             busy_timeout_s: float = 5.0) -> "MissionRegistry":
        """Open (or, with ``create=True``, initialize) a registry.

        Raises:
            RegistryUnavailable: the path does not hold a registry, or
                the database is locked past the busy timeout.
        """
        path = Path(path)
        if not create and not path.exists():
            raise RegistryUnavailable(
                f"no service registry at {path} (start one with 'repro serve')")
        try:
            if create:
                path.parent.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(
                path, timeout=busy_timeout_s, isolation_level=None,
                check_same_thread=False,
            )
            conn.execute("PRAGMA journal_mode=WAL")
            # FULL: a committed transition survives kill -9 of the whole
            # box's power, not just of the process — state is persisted
            # before anything is acknowledged.
            conn.execute("PRAGMA synchronous=FULL")
            conn.execute(f"PRAGMA busy_timeout={int(busy_timeout_s * 1000)}")
            if create:
                conn.executescript(_SCHEMA)
            else:
                found = conn.execute(
                    "SELECT name FROM sqlite_master WHERE name='jobs'").fetchone()
                if found is None:
                    conn.close()
                    raise RegistryUnavailable(
                        f"{path} exists but is not a fleet-service registry")
        except sqlite3.Error as exc:
            raise RegistryUnavailable(
                f"cannot open service registry at {path}: {exc}") from exc
        return cls(conn, path)

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "MissionRegistry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _tx(self):
        """Immediate write transaction under the in-process lock."""
        return _Transaction(self._conn, self._lock, self.path)

    # -- meta / configuration ---------------------------------------------

    def set_meta(self, **values) -> None:
        """Record service parameters (queue depth, workers) for clients."""
        with self._tx() as cur:
            for key, value in values.items():
                cur.execute(
                    "INSERT INTO meta (key, value) VALUES (?, ?) "
                    "ON CONFLICT(key) DO UPDATE SET value=excluded.value",
                    (key, json.dumps(value)))

    def get_meta(self, key: str, default=None):
        with self._lock:
            try:
                row = self._conn.execute(
                    "SELECT value FROM meta WHERE key=?", (key,)).fetchone()
            except sqlite3.Error as exc:
                raise RegistryUnavailable(
                    f"registry at {self.path} unavailable: {exc}") from exc
        return default if row is None else json.loads(row[0])

    # -- admission ---------------------------------------------------------

    def submit(self, *, fingerprint: str, config: dict, quality: str = "auto",
               tenant: str = "", now: float, max_attempts: Optional[int] = None,
               queue_depth: Optional[int] = None,
               retry_after: Optional[Callable[[int], float]] = None,
               ) -> tuple[JobRecord, bool]:
        """Admit one submission; returns ``(record, deduped)``.

        A fingerprint already present — in *any* state, including done —
        is deduplicated: the stored record is returned unchanged apart
        from its bumped ``submit_count``.  New work is admission-checked
        against the bounded backlog first.

        Raises:
            QueueFullError: the backlog is at the configured depth.
        """
        limit = queue_depth if queue_depth is not None else int(
            self.get_meta("queue_depth", DEFAULT_QUEUE_DEPTH))
        budget = max_attempts if max_attempts is not None else int(
            self.get_meta("max_attempts", 3))
        with self._tx() as cur:
            row = cur.execute(
                f"SELECT {','.join(_JOB_COLUMNS)} FROM jobs WHERE fingerprint=?",
                (fingerprint,)).fetchone()
            if row is not None:
                cur.execute(
                    "UPDATE jobs SET submit_count = submit_count + 1 "
                    "WHERE fingerprint=?", (fingerprint,))
                record = _record(row)
                _count_service("submitted", "mission submissions accepted", tenant)
                _count_service("deduped",
                               "submissions deduplicated onto an existing job",
                               tenant)
                return record, True
            placeholders = ",".join("?" for _ in ACTIVE_STATES)
            depth = cur.execute(
                f"SELECT COUNT(*) FROM jobs WHERE state IN ({placeholders})",
                ACTIVE_STATES).fetchone()[0]
            if depth >= limit:
                hint = retry_after(depth) if retry_after is not None else max(
                    1.0, float(depth))
                _count_service("rejected",
                               "submissions rejected by admission control", tenant)
                raise QueueFullError(depth, limit, hint)
            job_id = "j" + fingerprint[:12]
            cur.execute(
                "INSERT INTO jobs (fingerprint, job_id, tenant, quality, config,"
                " state, attempts, max_attempts, submit_count, completions,"
                " not_before, submitted_at) "
                "VALUES (?, ?, ?, ?, ?, 'queued', 0, ?, 1, 0, 0, ?)",
                (fingerprint, job_id, tenant, quality,
                 json.dumps(config, sort_keys=True), budget, now))
            self._log_transition(cur, job_id, now, "-", "queued", "submitted")
        _count_service("submitted", "mission submissions accepted", tenant)
        log.info("job-submitted", job_id=job_id, fingerprint=fingerprint,
                 tenant=tenant)
        return self.get(job_id), False

    # -- lease protocol ------------------------------------------------------

    def lease_next(self, *, owner: str, pid: int, now: float,
                   lease_s: float) -> Optional[JobRecord]:
        """Atomically claim the oldest due job, or ``None``.

        The claim grants a fresh random lease token and a deadline
        ``now + lease_s``; the attempt is charged to the retry budget at
        lease time, so a crash-looping job converges on the dead-letter
        table no matter where in its life it keeps dying.
        """
        token = secrets.token_hex(8)
        with self._tx() as cur:
            row = cur.execute(
                "SELECT job_id, state FROM jobs "
                "WHERE state IN ('queued','failed') AND not_before <= ? "
                "AND attempts < max_attempts "
                "ORDER BY submitted_at, job_id LIMIT 1", (now,)).fetchone()
            if row is None:
                return None
            job_id, src = row
            cur.execute(
                "UPDATE jobs SET state='leased', lease_token=?, lease_owner=?,"
                " lease_pid=?, leased_at=?, lease_deadline=?,"
                " attempts = attempts + 1 "
                "WHERE job_id=? AND state IN ('queued','failed')",
                (token, owner, pid, now, now + lease_s, job_id))
            if cur.rowcount != 1:
                return None
            self._log_transition(cur, job_id, now, src, "leased", owner)
            record = self._get(cur, job_id)
        _count_service("leased", "job leases granted to workers", record.tenant)
        return record

    def mark_running(self, job_id: str, token: str, now: float) -> bool:
        """``leased → running``; False when the lease was lost meanwhile."""
        return self._guarded_transition(
            job_id, token, now, srcs=("leased",), dst="running",
            sets="", args=())

    def heartbeat(self, job_id: str, token: str, *, now: float,
                  lease_s: float) -> bool:
        """Extend a live lease's deadline; False when the lease is gone."""
        with self._tx() as cur:
            cur.execute(
                "UPDATE jobs SET lease_deadline=? "
                "WHERE job_id=? AND lease_token=? AND state IN ('leased','running')",
                (now + lease_s, job_id, token))
            return cur.rowcount == 1

    def complete(self, job_id: str, token: str, *, result_path: str,
                 result_digest: str, now: float) -> bool:
        """``running → done`` guarded by the lease token.

        Returns False (and changes nothing) when the lease was lost —
        a requeued twin may be running, and only the current token
        holder may acknowledge.  The transition is durably committed
        before True is returned: that ordering is the exactly-once
        acknowledgement contract.
        """
        with self._tx() as cur:
            cur.execute(
                "UPDATE jobs SET state='done', completions = completions + 1,"
                " result_path=?, result_digest=?, finished_at=?, error=NULL,"
                " lease_deadline=NULL "
                "WHERE job_id=? AND lease_token=? AND state IN ('leased','running')",
                (result_path, result_digest, now, job_id, token))
            if cur.rowcount != 1:
                return False
            self._log_transition(cur, job_id, now, "running", "done", "")
            tenant = cur.execute(
                "SELECT tenant FROM jobs WHERE job_id=?", (job_id,)).fetchone()[0]
        _count_service("completed", "jobs completed exactly once", tenant)
        return True

    def fail(self, job_id: str, token: str, *, error: str, now: float,
             backoff_s: float) -> Optional[str]:
        """Record a failed attempt: requeue with backoff, or dead-letter.

        Returns the resulting state (``"failed"`` or ``"dead"``), or
        ``None`` when the lease token no longer owns the job.
        """
        with self._tx() as cur:
            row = cur.execute(
                "SELECT attempts, max_attempts, state FROM jobs "
                "WHERE job_id=? AND lease_token=? AND state IN ('leased','running')",
                (job_id, token)).fetchone()
            if row is None:
                return None
            attempts, budget, src = row
            return self._fail_locked(cur, job_id, src, attempts, budget,
                                     error, now, backoff_s)

    def release(self, job_id: str, token: str, now: float) -> bool:
        """``leased → queued`` without charging the budget.

        Graceful-shutdown path for leases whose work never started; the
        attempt charged at lease time is refunded.
        """
        with self._tx() as cur:
            cur.execute(
                "UPDATE jobs SET state='queued', attempts = attempts - 1,"
                " lease_token=NULL, lease_owner=NULL, lease_pid=NULL,"
                " leased_at=NULL, lease_deadline=NULL, not_before=? "
                "WHERE job_id=? AND lease_token=? AND state='leased'",
                (now, job_id, token))
            if cur.rowcount != 1:
                return False
            self._log_transition(cur, job_id, now, "leased", "queued", "released")
            return True

    def recover_expired(self, *, now: float,
                        backoff: Callable[[int], float]) -> list[str]:
        """Requeue (or dead-letter) every lease whose deadline passed.

        ``backoff(attempts)`` supplies the requeue delay.  Returns the
        affected job ids.  The stale holder keeps its token copy, but a
        late ``complete()``/``fail()`` from it is rejected — the token
        is cleared here, so only the *next* leaseholder can acknowledge.
        """
        return self._recover(
            "state IN ('leased','running') AND lease_deadline IS NOT NULL "
            "AND lease_deadline < ?", (now,), reason="lease-expired",
            now=now, backoff=backoff)

    def recover_orphans(self, *, now: float,
                        backoff: Callable[[int], float]) -> list[str]:
        """Requeue in-flight jobs whose leaseholder process is dead.

        Startup crash recovery: after a ``kill -9`` of the whole service
        the dead workers' leases may be nowhere near their deadlines;
        waiting them out would stall the restart, and the pid liveness
        check is conclusive on a single host.
        """
        with self._lock:
            rows = self._conn.execute(
                "SELECT job_id, lease_pid FROM jobs "
                "WHERE state IN ('leased','running') AND lease_pid IS NOT NULL"
            ).fetchall()
        dead = [job_id for job_id, pid in rows
                if pid is not None and not integrity.pid_alive(int(pid))]
        recovered = []
        for job_id in dead:
            recovered += self._recover(
                "job_id = ? AND state IN ('leased','running')", (job_id,),
                reason="owner-dead", now=now, backoff=backoff)
        return recovered

    def _recover(self, where: str, args: tuple, *, reason: str, now: float,
                 backoff: Callable[[int], float]) -> list[str]:
        with self._tx() as cur:
            rows = cur.execute(
                "SELECT job_id, state, attempts, max_attempts, tenant "
                f"FROM jobs WHERE {where}", args).fetchall()
            recovered = []
            for job_id, src, attempts, budget, tenant in rows:
                if attempts >= budget:
                    self._dead_letter_locked(cur, job_id, src,
                                             f"{reason} (budget spent)", now)
                    _count_service("dead", "jobs moved to the dead-letter table",
                                   tenant)
                else:
                    cur.execute(
                        "UPDATE jobs SET state='queued', lease_token=NULL,"
                        " lease_owner=NULL, lease_pid=NULL, leased_at=NULL,"
                        " lease_deadline=NULL, not_before=?, error=? "
                        "WHERE job_id=?",
                        (now + backoff(attempts), reason, job_id))
                    self._log_transition(cur, job_id, now, src, "queued", reason)
                    _count_service("requeued", "expired/orphaned leases requeued",
                                   tenant)
                log.warning("lease-recovered", job_id=job_id, reason=reason,
                            attempts=attempts)
                recovered.append(job_id)
        return recovered

    def _fail_locked(self, cur, job_id: str, src: str, attempts: int,
                     budget: int, error: str, now: float,
                     backoff_s: float) -> str:
        tenant = cur.execute(
            "SELECT tenant FROM jobs WHERE job_id=?", (job_id,)).fetchone()[0]
        if attempts >= budget:
            self._dead_letter_locked(cur, job_id, src, error, now)
            _count_service("dead", "jobs moved to the dead-letter table", tenant)
            return "dead"
        cur.execute(
            "UPDATE jobs SET state='failed', lease_token=NULL, lease_owner=NULL,"
            " lease_pid=NULL, leased_at=NULL, lease_deadline=NULL,"
            " not_before=?, error=? WHERE job_id=?",
            (now + backoff_s, error, job_id))
        self._log_transition(cur, job_id, now, src, "failed", error)
        _count_service("failed", "job attempts that failed and were requeued",
                       tenant)
        return "failed"

    def _dead_letter_locked(self, cur, job_id: str, src: str, error: str,
                            now: float) -> None:
        cur.execute(
            "UPDATE jobs SET state='dead', lease_token=NULL, lease_owner=NULL,"
            " lease_pid=NULL, leased_at=NULL, lease_deadline=NULL,"
            " finished_at=?, error=? WHERE job_id=?", (now, error, job_id))
        cur.execute(
            "INSERT INTO dead_letters (job_id, fingerprint, tenant, config,"
            " attempts, error, died_at) "
            "SELECT job_id, fingerprint, tenant, config, attempts, ?, ? "
            "FROM jobs WHERE job_id=?", (error, now, job_id))
        self._log_transition(cur, job_id, now, src, "dead", error)

    def _guarded_transition(self, job_id: str, token: str, now: float, *,
                            srcs: tuple, dst: str, sets: str, args: tuple) -> bool:
        placeholders = ",".join("?" for _ in srcs)
        with self._tx() as cur:
            cur.execute(
                f"UPDATE jobs SET state=?{sets} "
                f"WHERE job_id=? AND lease_token=? AND state IN ({placeholders})",
                (dst, *args, job_id, token, *srcs))
            if cur.rowcount != 1:
                return False
            self._log_transition(cur, job_id, now, "|".join(srcs), dst, "")
            return True

    def _log_transition(self, cur, job_id: str, now: float, src: str,
                        dst: str, detail: str) -> None:
        if dst not in ("queued", "leased", "running", "done", "failed", "dead"):
            raise StateTransitionError(f"unknown job state {dst!r}")
        cur.execute(
            "INSERT INTO transitions (job_id, at, src, dst, detail) "
            "VALUES (?, ?, ?, ?, ?)", (job_id, now, src, dst, detail))

    # -- queries -----------------------------------------------------------

    def get(self, ref: str) -> JobRecord:
        """Look a job up by job id, fingerprint, or a unique prefix."""
        with self._lock:
            record = self._find(self._conn, ref)
        if record is None:
            raise UnknownJobError(f"no job {ref!r} in registry {self.path}")
        return record

    def _get(self, cur, job_id: str) -> JobRecord:
        row = cur.execute(
            f"SELECT {','.join(_JOB_COLUMNS)} FROM jobs WHERE job_id=?",
            (job_id,)).fetchone()
        return _record(row)

    def _find(self, conn, ref: str) -> Optional[JobRecord]:
        cols = ",".join(_JOB_COLUMNS)
        row = conn.execute(
            f"SELECT {cols} FROM jobs WHERE job_id=? OR fingerprint=?",
            (ref, ref)).fetchone()
        if row is not None:
            return _record(row)
        rows = conn.execute(
            f"SELECT {cols} FROM jobs WHERE job_id LIKE ? OR fingerprint LIKE ?",
            (ref + "%", ref + "%")).fetchall()
        if len(rows) == 1:
            return _record(rows[0])
        return None

    def jobs(self, state: Optional[str] = None) -> list[JobRecord]:
        cols = ",".join(_JOB_COLUMNS)
        with self._lock:
            if state is None:
                rows = self._conn.execute(
                    f"SELECT {cols} FROM jobs ORDER BY submitted_at, job_id"
                ).fetchall()
            else:
                rows = self._conn.execute(
                    f"SELECT {cols} FROM jobs WHERE state=? "
                    "ORDER BY submitted_at, job_id", (state,)).fetchall()
        return [_record(r) for r in rows]

    def counts(self) -> dict[str, int]:
        """Job counts by state (every state present, zero-filled)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT state, COUNT(*) FROM jobs GROUP BY state").fetchall()
        out = {state: 0 for state in VALID_TRANSITIONS}
        out.update(dict(rows))
        return out

    def active_count(self) -> int:
        placeholders = ",".join("?" for _ in ACTIVE_STATES)
        with self._lock:
            return self._conn.execute(
                f"SELECT COUNT(*) FROM jobs WHERE state IN ({placeholders})",
                ACTIVE_STATES).fetchone()[0]

    def dead_letters(self) -> list[dict]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT job_id, fingerprint, tenant, attempts, error, died_at "
                "FROM dead_letters ORDER BY died_at").fetchall()
        return [dict(zip(("job_id", "fingerprint", "tenant", "attempts",
                          "error", "died_at"), row)) for row in rows]

    def transitions(self, job_id: str) -> list[tuple]:
        with self._lock:
            return self._conn.execute(
                "SELECT at, src, dst, detail FROM transitions WHERE job_id=? "
                "ORDER BY at, rowid", (job_id,)).fetchall()

    # -- health probes -------------------------------------------------------

    def set_probe(self, *, owner: str, pid: int, state: str, now: float,
                  detail: str = "") -> None:
        """Record the serving process's liveness/readiness heartbeat."""
        with self._tx() as cur:
            cur.execute(
                "INSERT INTO probes (owner, pid, state, updated_at, detail) "
                "VALUES (?, ?, ?, ?, ?) "
                "ON CONFLICT(owner) DO UPDATE SET pid=excluded.pid,"
                " state=excluded.state, updated_at=excluded.updated_at,"
                " detail=excluded.detail",
                (owner, pid, state, now, detail))

    def probe(self) -> Optional[dict]:
        """The most recent service probe, with a computed liveness bit."""
        with self._lock:
            row = self._conn.execute(
                "SELECT owner, pid, state, updated_at, detail FROM probes "
                "ORDER BY updated_at DESC LIMIT 1").fetchone()
        if row is None:
            return None
        owner, pid, state, updated_at, detail = row
        return {
            "owner": owner, "pid": pid, "state": state,
            "updated_at": updated_at, "detail": detail,
            "live": integrity.pid_alive(int(pid)),
            "ready": state == "ready" and integrity.pid_alive(int(pid)),
        }


class _Transaction:
    """``BEGIN IMMEDIATE`` write transaction, lock-guarded, error-wrapped."""

    def __init__(self, conn: sqlite3.Connection, lock: threading.RLock,
                 path: Path):
        self._conn = conn
        self._lock = lock
        self._path = path

    def __enter__(self) -> sqlite3.Cursor:
        self._lock.acquire()
        try:
            self._conn.execute("BEGIN IMMEDIATE")
        except sqlite3.Error as exc:
            self._lock.release()
            raise RegistryUnavailable(
                f"registry at {self._path} unavailable: {exc}") from exc
        return self._conn.cursor()

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            if exc_type is None:
                self._conn.execute("COMMIT")
            else:
                self._conn.execute("ROLLBACK")
        except sqlite3.Error as db_exc:
            if exc_type is None:
                raise RegistryUnavailable(
                    f"registry at {self._path} unavailable: {db_exc}"
                ) from db_exc
        finally:
            self._lock.release()
