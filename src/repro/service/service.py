"""The long-running mission fleet service.

``FleetService.run()`` drives the whole lifecycle on one asyncio loop:

* a **scheduler** task leases due jobs from the durable registry and
  feeds a bounded :class:`asyncio.Queue` (depth = worker count — leases
  are only taken when a worker slot is in sight, so lease ages stay
  short and backpressure reaches the registry, where admission control
  rejects submissions past the configured backlog);
* ``n_workers`` **worker** tasks drain the queue, each running its
  mission in a thread (:func:`repro.service.worker.execute_job`) under a
  heartbeat that keeps the lease alive — until the optional per-job
  deadline passes, after which the heartbeat stops on purpose and the
  lease-expiry sweep reclaims the job;
* the scheduler doubles as **supervisor**: it heartbeats jobs still
  waiting in the queue, requeues expired leases with seeded-jitter
  exponential backoff (dead-lettering past the retry budget), refreshes
  the health probe, and exports the ``service.*`` telemetry.

Crash recovery is a property of the registry + journal, not of this
loop: on startup the service requeues every lease whose owning process
died (``kill -9`` leaves them mid-flight), and each re-leased job
*resumes* from its checkpoint journal.  A stale worker that somehow
survives cannot double-acknowledge (lease tokens) or interleave
checkpoint writes (journal lease) — exactly-once execution per
fingerprint holds across restarts.
"""

from __future__ import annotations

import asyncio
import os
import signal
import socket
import time
from typing import Optional

from repro.exec.checkpoint import JournalBusyError
from repro.faults.service import ServiceChaos
from repro.obs import _state as _obs
from repro.obs import get_logger
from repro.obs import metrics as _metrics
from repro.service import worker as worker_mod
from repro.service.config import ServiceConfig
from repro.service.queue import BackoffPolicy
from repro.service.registry import JobRecord, MissionRegistry

log = get_logger("repro.service")


class FleetService:
    """Supervised async mission fleet service over one durable registry."""

    def __init__(self, config: ServiceConfig, *,
                 chaos: Optional[ServiceChaos] = None):
        self.config = config
        self.chaos = chaos or ServiceChaos()
        self.owner = f"{socket.gethostname()}:{os.getpid()}"
        self.registry: Optional[MissionRegistry] = None
        self._backoff = BackoffPolicy(
            base_s=config.retry_backoff_s, cap_s=config.backoff_cap_s,
            seed=config.backoff_seed)
        self._queue: Optional[asyncio.Queue] = None
        self._stop = asyncio.Event()
        #: Leased jobs sitting in the asyncio queue (scheduler keeps
        #: their leases alive until a worker picks them up).
        self._awaiting: dict[str, JobRecord] = {}
        self.stats = {
            "completed": 0, "failed": 0, "dead": 0, "requeued": 0,
            "recovered_on_start": 0, "lease_lost": 0, "journal_busy": 0,
        }

    # -- lifecycle ---------------------------------------------------------

    def request_stop(self) -> None:
        """Ask the service to shut down gracefully (signal-handler safe)."""
        self._stop.set()

    async def run(self, *, drain: bool = False,
                  install_signal_handlers: bool = False) -> dict:
        """Serve until stopped — or, with ``drain=True``, until the
        registry holds no runnable work.  Returns the run's stats."""
        cfg = self.config
        for path in (cfg.cache_dir, cfg.journal_dir, cfg.results_dir):
            path.mkdir(parents=True, exist_ok=True)
        self.registry = MissionRegistry.open(cfg.db_path, create=True)
        self.registry.set_meta(
            queue_depth=cfg.queue_depth, max_attempts=cfg.max_attempts,
            n_workers=cfg.n_workers, nominal_job_s=cfg.nominal_job_s)
        now = time.time()
        recovered = self.registry.recover_orphans(
            now=now, backoff=lambda attempts: 0.0)
        recovered += self.registry.recover_expired(
            now=now, backoff=self._backoff.delay_s)
        self.stats["recovered_on_start"] = len(recovered)
        if recovered:
            log.warning("startup-recovery", jobs=recovered)
        self.registry.set_probe(owner=self.owner, pid=os.getpid(),
                                state="ready", now=now)

        loop = asyncio.get_running_loop()
        if install_signal_handlers:
            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(sig, self.request_stop)
                except (NotImplementedError, RuntimeError):
                    pass

        self._queue = asyncio.Queue(maxsize=cfg.n_workers)
        workers = [
            asyncio.create_task(self._worker(i), name=f"service-worker-{i}")
            for i in range(cfg.n_workers)
        ]
        try:
            await self._supervise(drain=drain)
        finally:
            # Graceful shutdown: release leases nobody started, then let
            # in-flight work finish and acknowledge.
            while self._queue is not None and not self._queue.empty():
                job = self._queue.get_nowait()
                if job is not None:
                    self._awaiting.pop(job.job_id, None)
                    self.registry.release(job.job_id, job.lease_token,
                                          now=time.time())
            for _ in workers:
                await self._queue.put(None)
            await asyncio.gather(*workers, return_exceptions=True)
            self.registry.set_probe(
                owner=self.owner, pid=os.getpid(),
                state="drained" if drain and not self._stop.is_set() else "stopped",
                now=time.time())
            self.registry.close()
        return dict(self.stats)

    # -- supervisor / scheduler ---------------------------------------------

    async def _supervise(self, *, drain: bool) -> None:
        cfg = self.config
        registry = self.registry
        last_probe = 0.0
        while not self._stop.is_set():
            now = time.time()
            leased = None
            if not self._queue.full():
                leased = registry.lease_next(
                    owner=self.owner, pid=os.getpid(), now=now,
                    lease_s=cfg.lease_s)
            if leased is not None:
                self._awaiting[leased.job_id] = leased
                await self._queue.put(leased)
                continue
            # Keep queued-but-unstarted leases alive; workers own the
            # heartbeats of jobs they have picked up.
            for job in list(self._awaiting.values()):
                registry.heartbeat(job.job_id, job.lease_token,
                                   now=now, lease_s=cfg.lease_s)
            requeued = registry.recover_expired(
                now=now, backoff=self._backoff.delay_s)
            self.stats["requeued"] += len(requeued)
            if now - last_probe >= cfg.effective_heartbeat_s:
                last_probe = now
                counts = registry.counts()
                registry.set_probe(owner=self.owner, pid=os.getpid(),
                                   state="ready", now=now,
                                   detail=str(counts))
                if _obs.enabled:
                    _metrics.gauge(
                        "service.queue_depth",
                        "jobs occupying backlog slots (queued+leased+running)",
                    ).set(registry.active_count())
            if drain and registry.active_count() == 0 and not self._awaiting:
                log.info("drain-complete", stats=dict(self.stats))
                return
            try:
                await asyncio.wait_for(self._stop.wait(), timeout=cfg.poll_s)
            except asyncio.TimeoutError:
                pass

    # -- workers ------------------------------------------------------------

    async def _worker(self, index: int) -> None:
        cfg = self.config
        registry = self.registry
        while True:
            job = await self._queue.get()
            if job is None:
                return
            self._awaiting.pop(job.job_id, None)
            now = time.time()
            if not registry.mark_running(job.job_id, job.lease_token, now):
                # Lease expired while queued; the requeued twin owns it now.
                self.stats["lease_lost"] += 1
                continue
            beat = asyncio.create_task(
                self._heartbeat(job, started=now),
                name=f"heartbeat-{job.job_id}")
            try:
                path, digest = await asyncio.to_thread(
                    worker_mod.execute_job, job,
                    cache_dir=cfg.cache_dir, journal_dir=cfg.journal_dir,
                    results_dir=cfg.results_dir)
            except JournalBusyError as exc:
                self.stats["journal_busy"] += 1
                self._fail(job, f"journal-busy: {exc}")
            except Exception as exc:  # noqa: BLE001 — any job error is a job failure
                self._fail(job, f"{type(exc).__name__}: {exc}")
            else:
                done_at = time.time()
                if registry.complete(job.job_id, job.lease_token,
                                     result_path=path, result_digest=digest,
                                     now=done_at):
                    self.stats["completed"] += 1
                    if _obs.enabled and job.leased_at is not None:
                        _metrics.histogram(
                            "service.lease_age_s",
                            "lease age at completion, seconds",
                        ).observe(done_at - job.leased_at, tenant=job.tenant)
                    self.chaos.on_completion(self.stats["completed"])
                else:
                    self.stats["lease_lost"] += 1
                    log.warning("stale-completion-rejected", job_id=job.job_id)
            finally:
                beat.cancel()

    def _fail(self, job: JobRecord, error: str) -> None:
        outcome = self.registry.fail(
            job.job_id, job.lease_token, error=error, now=time.time(),
            backoff_s=self._backoff.delay_s(job.attempts))
        if outcome == "dead":
            self.stats["dead"] += 1
        elif outcome == "failed":
            self.stats["failed"] += 1
        else:
            self.stats["lease_lost"] += 1
        log.warning("job-attempt-failed", job_id=job.job_id, error=error,
                    outcome=outcome or "lease-lost")

    async def _heartbeat(self, job: JobRecord, *, started: float) -> None:
        cfg = self.config
        while True:
            await asyncio.sleep(cfg.effective_heartbeat_s)
            if (cfg.job_timeout_s is not None
                    and time.time() - started > cfg.job_timeout_s):
                # Deliberately stop renewing: the lease expires and the
                # supervisor requeues the job against its retry budget.
                log.warning("job-deadline-passed", job_id=job.job_id)
                return
            self.registry.heartbeat(job.job_id, job.lease_token,
                                    now=time.time(), lease_s=cfg.lease_s)


def serve(config: ServiceConfig, *, drain: bool = False,
          chaos: Optional[ServiceChaos] = None,
          install_signal_handlers: bool = False) -> dict:
    """Synchronous entry point: run a fleet service on a fresh loop."""
    service = FleetService(config, chaos=chaos)
    return asyncio.run(service.run(
        drain=drain, install_signal_handlers=install_signal_handlers))
