"""Job execution: one leased submission through the mission engine.

A worker reconstructs the submitted :class:`MissionConfig`, runs it with
the service's *shared* content-addressed cache and per-fingerprint
checkpoint journal, and persists a canonical result artifact.  The
execution layers compose into the service's exactly-once story:

* the checkpoint journal makes a re-leased job **resume** — days the
  killed incarnation completed are restored bit-identically, never
  recomputed (``repro.exec.checkpoint``);
* the journal's exclusive lease turns concurrent execution of one
  fingerprint — a stale worker racing its requeued twin — into a clean
  :class:`~repro.exec.checkpoint.JournalBusyError`, which the service
  treats as a retryable collision;
* the result artifact is content-addressed by the submission
  fingerprint and checksummed (``repro.exec.integrity``), and its
  digest covers only mission *content* (summaries, pairwise data,
  quality/reliability reports) — never execution-side noise like cache
  hit counts — so an interrupted-then-resumed run and an uninterrupted
  one produce byte-identical artifacts.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING

from repro.core.config import ExecutionConfig
from repro.exec import hashing, integrity
from repro.experiments.mission import run_mission
from repro.experiments.submission import config_from_dict

if TYPE_CHECKING:
    from repro.service.registry import JobRecord

#: Version tag of the result-artifact payload layout.
RESULT_SCHEMA = 1


def result_payload(result, fingerprint: str) -> dict:
    """Canonical, deterministic result record for one completed mission.

    Deliberately excludes telemetry, cache statistics, and the (large,
    cache-shared) ground truth: the payload must hash identically across
    cold runs, warm-cache runs, and post-crash resumes of the same
    submission.
    """
    return {
        "schema": RESULT_SCHEMA,
        "fingerprint": fingerprint,
        "config": hashing.canonical(result.cfg),
        "badge_days": len(result.sensing.summaries),
        "sdcard_gib": result.sdcard.total_gib(),
        "summaries": result.sensing.summaries,
        "pairwise": result.sensing.pairwise,
        "quality": result.quality.to_dict() if result.quality is not None else None,
        "reliability": (result.reliability.to_dict()
                        if result.reliability is not None else None),
    }


def execute_job(job: "JobRecord", *, cache_dir: Path, journal_dir: Path,
                results_dir: Path) -> tuple[str, str]:
    """Run one leased job to completion; returns ``(path, digest)``.

    Always resumes: with the shared journal, a job re-leased after a
    service ``kill -9`` restores every day its previous incarnation
    already completed, and only computes the remainder.

    Raises:
        JournalBusyError: another live process is executing this
            fingerprint right now (retryable — requeue with backoff).
        ConfigError: the stored submission does not deserialize.
    """
    cfg = config_from_dict(job.config)
    execution = ExecutionConfig(
        n_workers="serial",
        cache_dir=str(cache_dir),
        checkpoint_dir=str(journal_dir),
        resume=True,
    )
    result = run_mission(cfg, execution=execution, quality=job.quality)
    path = Path(results_dir) / f"{job.fingerprint}.pkl"
    digest = integrity.write_artifact(
        path, result_payload(result, job.fingerprint),
        schema=hashing.SCHEMA_VERSION)
    return str(path), digest


def load_result(result_path: str | Path) -> dict:
    """Verified result payload for a done job (checksum-checked)."""
    return integrity.read_artifact(result_path, schema=hashing.SCHEMA_VERSION)
