"""Configuration of the mission fleet service.

One :class:`ServiceConfig` describes a service *home*: a directory
holding the durable registry database plus the stores every worker
shares — the content-addressed mission cache, the per-fingerprint
checkpoint journals, and the result artifacts.  Everything a restart
needs to recover in-flight work lives under this one root.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.core.errors import ConfigError

#: Registry database file name inside the service root.
DB_NAME = "registry.db"

#: Default bounded backlog (queued + leased + running) before admission
#: control starts rejecting submissions.
DEFAULT_QUEUE_DEPTH = 256


@dataclass(frozen=True)
class ServiceConfig:
    """How a fleet service runs — never what its missions compute.

    Attributes:
        root: service home directory (registry DB, cache, journals,
            results all live under it; created on demand).
        n_workers: concurrent mission workers (asyncio tasks, each
            running its leased mission in a thread).
        queue_depth: admission bound on the backlog; a submission that
            would push queued+leased+running past it is rejected with a
            :class:`~repro.service.errors.QueueFullError` carrying a
            retry-after hint.
        lease_s: lease duration granted to a worker; heartbeats extend
            it, and a lease whose deadline passes without one is
            requeued (the holder is presumed dead or hung).
        heartbeat_s: interval between lease heartbeats; must leave
            comfortable slack under ``lease_s``.
        max_attempts: per-job retry budget — lease acquisitions,
            including post-crash re-leases — before the job moves to
            the dead-letter table instead of requeueing.
        retry_backoff_s: base of the exponential requeue backoff.
        backoff_cap_s: upper bound on one backoff delay.
        backoff_seed: seed of the jitter RNG so retry schedules are
            reproducible.
        job_timeout_s: optional per-job wall-clock deadline; a job
            running longer stops being heartbeated, its lease expires,
            and it is requeued against the retry budget.
        poll_s: scheduler poll interval (lease scans, probe refresh).
        nominal_job_s: rough per-job service time used only to compute
            the retry-after hint handed to rejected submitters.
    """

    root: str
    n_workers: int = 2
    queue_depth: int = DEFAULT_QUEUE_DEPTH
    lease_s: float = 30.0
    heartbeat_s: Optional[float] = None
    max_attempts: int = 3
    retry_backoff_s: float = 0.25
    backoff_cap_s: float = 30.0
    backoff_seed: int = 0
    job_timeout_s: Optional[float] = None
    poll_s: float = 0.05
    nominal_job_s: float = 5.0

    def __post_init__(self) -> None:
        if not str(self.root):
            raise ConfigError("service root must be a non-empty path")
        if self.n_workers < 1:
            raise ConfigError("n_workers must be >= 1")
        if self.queue_depth < 1:
            raise ConfigError("queue_depth must be >= 1")
        if self.lease_s <= 0:
            raise ConfigError("lease_s must be positive")
        if self.heartbeat_s is not None and not 0 < self.heartbeat_s < self.lease_s:
            raise ConfigError("heartbeat_s must lie in (0, lease_s)")
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")
        if self.retry_backoff_s < 0:
            raise ConfigError("retry_backoff_s must be >= 0")
        if self.backoff_cap_s <= 0:
            raise ConfigError("backoff_cap_s must be positive")
        if self.job_timeout_s is not None and self.job_timeout_s <= 0:
            raise ConfigError("job_timeout_s must be positive or None")
        if self.poll_s <= 0:
            raise ConfigError("poll_s must be positive")
        if self.nominal_job_s <= 0:
            raise ConfigError("nominal_job_s must be positive")

    # -- derived paths ---------------------------------------------------

    @property
    def root_path(self) -> Path:
        return Path(self.root)

    @property
    def db_path(self) -> Path:
        return self.root_path / DB_NAME

    @property
    def cache_dir(self) -> Path:
        return self.root_path / "cache"

    @property
    def journal_dir(self) -> Path:
        return self.root_path / "journal"

    @property
    def results_dir(self) -> Path:
        return self.root_path / "results"

    @property
    def effective_heartbeat_s(self) -> float:
        """Heartbeat interval: explicit, or a third of the lease."""
        return self.heartbeat_s if self.heartbeat_s is not None else self.lease_s / 3.0

    def retry_after_s(self, depth: int) -> float:
        """Suggested wait for a rejected submitter: time for the current
        backlog to drain one slot, given the worker pool."""
        return max(1.0, depth * self.nominal_job_s / self.n_workers)
