"""Thin client for the mission fleet service.

The client and the service rendezvous on the durable registry: a
submission is one transaction against the same SQLite file the service
drains, so queueing work needs no network hop and survives the service
being down (jobs wait in ``queued`` until a ``repro serve`` picks them
up).  Everything the CLI does — submit, status, result, health — goes
through here, so library users get the identical surface.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

from repro.core.config import MissionConfig
from repro.experiments.submission import (
    config_to_dict,
    submission_fingerprint,
)
from repro.service import worker as worker_mod
from repro.service.config import DB_NAME
from repro.service.errors import ServiceError
from repro.service.registry import JobRecord, MissionRegistry


@dataclass(frozen=True)
class SubmitReceipt:
    """What a submission returns: identity plus dedup disposition."""

    job_id: str
    fingerprint: str
    state: str
    deduped: bool
    submit_count: int

    def to_text(self) -> str:
        verb = "deduplicated onto" if self.deduped else "submitted as"
        return (f"{verb} job {self.job_id} ({self.state}, "
                f"submission #{self.submit_count}, "
                f"fingerprint {self.fingerprint})")


class FleetClient:
    """Registry-backed client; one instance per service root."""

    def __init__(self, root: str | Path, *, create: bool = False,
                 busy_timeout_s: float = 5.0):
        self.root = Path(root)
        self.registry = MissionRegistry.open(
            self.root / DB_NAME, create=create, busy_timeout_s=busy_timeout_s)

    def close(self) -> None:
        self.registry.close()

    def __enter__(self) -> "FleetClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- operations --------------------------------------------------------

    def submit(self, cfg: MissionConfig, *, quality: str = "auto",
               tenant: str = "") -> SubmitReceipt:
        """Queue one mission submission (deduplicated by fingerprint).

        Raises:
            QueueFullError: admission control rejected the submission;
                the error carries a ``retry_after_s`` hint.
        """
        fingerprint = submission_fingerprint(cfg, quality)
        n_workers = int(self.registry.get_meta("n_workers", 1))
        nominal = float(self.registry.get_meta("nominal_job_s", 5.0))
        record, deduped = self.registry.submit(
            fingerprint=fingerprint, config=config_to_dict(cfg),
            quality=quality, tenant=tenant, now=time.time(),
            retry_after=lambda depth: max(1.0, depth * nominal / n_workers))
        return SubmitReceipt(
            job_id=record.job_id, fingerprint=record.fingerprint,
            state=record.state, deduped=deduped,
            submit_count=record.submit_count + (1 if deduped else 0))

    def status(self, ref: str) -> JobRecord:
        """Registry record for a job id / fingerprint (or unique prefix)."""
        return self.registry.get(ref)

    def result(self, ref: str) -> dict:
        """Verified result payload of a completed job.

        Raises:
            UnknownJobError: no such job.
            ServiceError: the job exists but has not completed.
        """
        record = self.registry.get(ref)
        if record.state != "done" or record.result_path is None:
            raise ServiceError(
                f"job {record.job_id} is {record.state}, not done"
                + (f" (last error: {record.error})" if record.error else ""))
        return worker_mod.load_result(record.result_path)

    def wait(self, ref: str, *, timeout_s: float = 60.0,
             poll_s: float = 0.1) -> JobRecord:
        """Block until a job reaches ``done``/``dead`` (or raise on timeout)."""
        deadline = time.monotonic() + timeout_s
        while True:
            record = self.registry.get(ref)
            if record.terminal:
                return record
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"timed out after {timeout_s:.0f}s waiting on job "
                    f"{record.job_id} (state {record.state})")
            time.sleep(poll_s)

    def overview(self) -> dict:
        """Counts by state, dedup totals, dead letters, and the probe."""
        jobs = self.registry.jobs()
        return {
            "counts": self.registry.counts(),
            "submitted": sum(j.submit_count for j in jobs),
            "deduped": sum(j.submit_count - 1 for j in jobs),
            "jobs": len(jobs),
            "dead_letters": self.registry.dead_letters(),
            "probe": self.registry.probe(),
        }

    def health(self) -> dict:
        """Liveness/readiness of the serving process, from its probe."""
        probe = self.registry.probe()
        if probe is None:
            return {"live": False, "ready": False, "detail": "no service probe"}
        return probe
