"""repro.service: the fault-tolerant mission fleet service.

The long-running counterpart to calling :func:`repro.run_mission` by
hand (ROADMAP item 2): mission/ablation submissions go into a durable
SQLite registry, are deduplicated by their content-addressed submission
fingerprint, and drain through a supervised asyncio worker pool with
exactly-once execution per fingerprint — across duplicate submitters,
worker failures, and ``kill -9`` of the whole service.

Layering (each module depends only on those above it):

- :mod:`repro.service.errors` — the :class:`ServiceError` family;
- :mod:`repro.service.config` — :class:`ServiceConfig`, the service
  home directory layout;
- :mod:`repro.service.queue` — seeded-jitter :class:`BackoffPolicy`
  and admission accounting (pure state machines);
- :mod:`repro.service.registry` — :class:`MissionRegistry`, the durable
  WAL-journaled job store with the monotonic ``queued → leased →
  running → done|failed|dead`` state machine, lease protocol, and
  dead-letter table;
- :mod:`repro.service.worker` — one leased job through the mission
  engine, resuming from its checkpoint journal;
- :mod:`repro.service.service` — :class:`FleetService`, the supervised
  asyncio loop (scheduler, workers, heartbeats, recovery, probes);
- :mod:`repro.service.client` — :class:`FleetClient`, the thin
  registry-backed client the CLI wraps.

Quickstart::

    from repro import MissionConfig
    from repro.service import FleetClient, FleetService, ServiceConfig, serve

    client = FleetClient("fleet", create=True)
    receipt = client.submit(MissionConfig(days=3, seed=1))
    serve(ServiceConfig(root="fleet", n_workers=4), drain=True)
    payload = client.result(receipt.job_id)
"""

from repro.service.client import FleetClient, SubmitReceipt
from repro.service.config import DEFAULT_QUEUE_DEPTH, ServiceConfig
from repro.service.errors import (
    QueueFullError,
    RegistryUnavailable,
    ServiceError,
    StateTransitionError,
    UnknownJobError,
)
from repro.service.queue import BackoffPolicy
from repro.service.registry import JobRecord, MissionRegistry
from repro.service.service import FleetService, ServiceChaos, serve

__all__ = [
    "BackoffPolicy",
    "DEFAULT_QUEUE_DEPTH",
    "FleetClient",
    "FleetService",
    "JobRecord",
    "MissionRegistry",
    "QueueFullError",
    "RegistryUnavailable",
    "ServiceChaos",
    "ServiceConfig",
    "ServiceError",
    "StateTransitionError",
    "SubmitReceipt",
    "UnknownJobError",
    "serve",
]
