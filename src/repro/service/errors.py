"""Errors raised by the mission fleet service.

All derive from :class:`ServiceError` so the CLI can turn any of them
into a one-line message and a non-zero exit instead of a traceback —
an operator poking a dead or busy service needs the reason, not a
stack.
"""

from __future__ import annotations

from repro.core.errors import ReproError


class ServiceError(ReproError):
    """Base class for every fleet-service error."""


class RegistryUnavailable(ServiceError):
    """The registry database cannot be reached (missing path, not a
    registry, or locked past the busy timeout)."""


class QueueFullError(ServiceError):
    """Admission control rejected a submission: the backlog is at the
    service's bounded depth (429-style backpressure instead of OOM).

    Attributes:
        depth: current backlog (queued + leased + running jobs).
        retry_after_s: suggested client wait before resubmitting.
    """

    def __init__(self, depth: int, limit: int, retry_after_s: float):
        self.depth = depth
        self.limit = limit
        self.retry_after_s = retry_after_s
        super().__init__(
            f"queue full ({depth}/{limit} jobs in flight); "
            f"retry after {retry_after_s:.1f}s"
        )


class UnknownJobError(ServiceError):
    """No job with the given id or fingerprint exists in the registry."""


class StateTransitionError(ServiceError):
    """A job was asked to make a transition its state machine forbids.

    Job states only ever move forward (``queued → leased → running →
    done|failed|dead``); a stale lease trying to complete a job someone
    else already owns surfaces here instead of corrupting the record.
    """
