"""Queueing policy: seeded-jitter backoff and admission accounting.

Pure state machines with no database or event-loop dependency, mirroring
how :mod:`repro.support.reliable` keeps the bus retry logic independently
testable.  The registry and service import these; nothing here imports
them back.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import ConfigError

#: Jitter multiplier range; matches the supervisor's retry jitter so
#: requeue storms desynchronize without ever collapsing a delay to zero.
JITTER_LOW, JITTER_HIGH = 0.5, 1.5


@dataclass
class BackoffPolicy:
    """Seeded exponential backoff for job requeues.

    The delay before attempt ``n`` retries is
    ``base * 2**(n-1) * U(0.5, 1.5)``, capped.  The jitter stream is
    seeded, so a service restarted with the same seed reproduces the
    same requeue schedule — chaos tests can assert on timing classes
    instead of racing them.
    """

    base_s: float = 0.25
    cap_s: float = 30.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base_s < 0:
            raise ConfigError("backoff base_s must be >= 0")
        if self.cap_s <= 0:
            raise ConfigError("backoff cap_s must be positive")
        self._rng = np.random.default_rng(
            np.random.SeedSequence((self.seed, 0xBACC0FF)))

    def delay_s(self, attempts: int) -> float:
        """Backoff before the next try, given ``attempts`` already made."""
        if self.base_s == 0:
            return 0.0
        exponent = max(0, attempts - 1)
        jitter = float(self._rng.uniform(JITTER_LOW, JITTER_HIGH))
        return min(self.cap_s, self.base_s * (2.0 ** exponent) * jitter)


#: Jobs in these states occupy backlog slots for admission control.
ACTIVE_STATES = ("queued", "failed", "leased", "running")
