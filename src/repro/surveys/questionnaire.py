"""The evening questionnaire.

Five dimensions on a 1-7 Likert scale, "prepared so as to minimize the
overhead necessary to complete them".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ConfigError, DataError

#: The paper's five questioned dimensions.
DIMENSIONS = ("satisfaction", "wellbeing", "comfort", "productivity", "distraction")

LIKERT_MIN, LIKERT_MAX = 1, 7


@dataclass(frozen=True)
class Questionnaire:
    """A survey instrument: a tuple of dimensions on a Likert scale."""

    dimensions: tuple[str, ...] = DIMENSIONS
    scale_min: int = LIKERT_MIN
    scale_max: int = LIKERT_MAX

    def __post_init__(self) -> None:
        if not self.dimensions:
            raise ConfigError("questionnaire needs at least one dimension")
        if self.scale_min >= self.scale_max:
            raise ConfigError("scale_min must be below scale_max")

    def validate_answers(self, answers: dict[str, int]) -> None:
        """Raise :class:`DataError` on missing/out-of-range answers."""
        for dim in self.dimensions:
            if dim not in answers:
                raise DataError(f"missing answer for {dim!r}")
            value = answers[dim]
            if not self.scale_min <= value <= self.scale_max:
                raise DataError(f"{dim}={value} outside Likert range")

    def midpoint(self) -> float:
        """Scale midpoint (neutral answer)."""
        return (self.scale_min + self.scale_max) / 2.0


@dataclass(frozen=True)
class SurveyResponse:
    """One astronaut's completed evening survey."""

    astro_id: str
    day: int
    answers: dict[str, int]

    def answer(self, dimension: str) -> int:
        try:
            return self.answers[dimension]
        except KeyError:
            raise DataError(f"no answer for {dimension!r}") from None
