"""Survey substrate: the classic self-report instruments.

"To complement our technical solutions, we also made use of classic
surveys ... filled in by each astronaut every evening [questioning]
their levels of satisfaction, well-being, comfort, productivity, and
distraction."  Responses are synthesized from ground-truth crew state
(with the response biases that motivate sensor-based methods), and the
validation module cross-checks sensor findings against them — the
paper's laborious verification loop.
"""

from repro.surveys.questionnaire import DIMENSIONS, Questionnaire, SurveyResponse
from repro.surveys.responses import synthesize_responses
from repro.surveys.validation import correlate_with_sensors, validation_report

__all__ = [
    "DIMENSIONS",
    "Questionnaire",
    "SurveyResponse",
    "correlate_with_sensors",
    "synthesize_responses",
    "validation_report",
]
