"""Cross-validation of sensor findings against the surveys.

"We strove to verify every single result we obtained with our
sociometric technologies" — here, by correlating the per-day sensor
series (speech fraction, walking fraction) with the corresponding
survey dimensions across the mission.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analytics.dataset import MissionSensing
from repro.analytics.speech import daily_speech_fraction
from repro.analytics.walking import daily_walking_fraction
from repro.surveys.questionnaire import SurveyResponse


def _pearson(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation; 0.0 when degenerate."""
    if x.size < 3 or np.std(x) == 0 or np.std(y) == 0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


def correlate_with_sensors(
    sensing: MissionSensing,
    responses: list[SurveyResponse],
    sensor_series: dict[str, dict[int, float]],
    dimension: str,
) -> dict[str, float]:
    """Per-astronaut correlation between a sensor series and a dimension.

    Args:
        sensing: the sensing dataset (defines the day range).
        responses: evening survey responses.
        sensor_series: astronaut -> {day -> value} sensor daily series.
        dimension: survey dimension to correlate against.

    Returns:
        astronaut -> Pearson r over days with both measurements.
    """
    by_key = {(r.astro_id, r.day): r for r in responses}
    out: dict[str, float] = {}
    for astro, series in sensor_series.items():
        xs, ys = [], []
        for day, value in series.items():
            response = by_key.get((astro, day))
            if response is not None:
                xs.append(value)
                ys.append(float(response.answer(dimension)))
        out[astro] = _pearson(np.asarray(xs), np.asarray(ys))
    return out


@dataclass
class ValidationReport:
    """Mission-level sensor-vs-survey agreement."""

    speech_vs_distraction: dict[str, float]
    speech_vs_satisfaction: dict[str, float]
    walking_vs_productivity: dict[str, float]

    def mean_r(self) -> dict[str, float]:
        """Crew-mean correlation per pairing."""
        return {
            "speech_vs_distraction": float(np.mean(list(self.speech_vs_distraction.values()))),
            "speech_vs_satisfaction": float(np.mean(list(self.speech_vs_satisfaction.values()))),
            "walking_vs_productivity": float(np.mean(list(self.walking_vs_productivity.values()))),
        }

    def __str__(self) -> str:
        lines = ["sensor-vs-survey validation (crew-mean Pearson r):"]
        for name, r in self.mean_r().items():
            lines.append(f"  {name}: {r:+.2f}")
        return "\n".join(lines)


def validation_report(
    sensing: MissionSensing, responses: list[SurveyResponse]
) -> ValidationReport:
    """Build the standard validation report.

    Expected signs: more detected speech correlates with self-reported
    distraction and (mission-wide mood both driving them) satisfaction;
    sensors and surveys must agree for the pipeline to be trusted.
    """
    speech = daily_speech_fraction(sensing)
    walking = daily_walking_fraction(sensing)
    return ValidationReport(
        speech_vs_distraction=correlate_with_sensors(sensing, responses, speech, "distraction"),
        speech_vs_satisfaction=correlate_with_sensors(sensing, responses, speech, "satisfaction"),
        walking_vs_productivity=correlate_with_sensors(sensing, responses, walking, "productivity"),
    )
