"""Survey response synthesis from ground-truth crew state.

Each astronaut's evening answers derive from the day's scripted mood
(the declining talk factor, the famine, the reprimand, grief after C's
departure), their own activity, and per-person response biases — the
acquiescence and halo effects whose presence in self-reports is exactly
why the paper augments them with sensing.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import MissionConfig
from repro.core.rng import RngRegistry
from repro.crew.events_script import DECEASED, day_talk_factor
from repro.crew.trace import MissionTruth
from repro.surveys.questionnaire import Questionnaire, SurveyResponse

#: Per-astronaut response bias (shifts every answer; a classic self-report
#: artifact).  Positive = paints a rosier picture.
RESPONSE_BIAS = {"A": 0.4, "B": 0.8, "C": 0.3, "D": -0.2, "E": -0.6, "F": 0.2}


def _day_mood(cfg: MissionConfig, day: int) -> float:
    """Scripted crew mood for a day in [0, 1] (1 = great)."""
    mood = day_talk_factor(cfg, day)  # already encodes decline + events
    return float(np.clip(mood, 0.0, 1.0))


def synthesize_responses(
    truth: MissionTruth,
    questionnaire: Questionnaire | None = None,
    rngs: RngRegistry | None = None,
) -> list[SurveyResponse]:
    """Generate every astronaut's evening survey for the whole mission."""
    questionnaire = questionnaire if questionnaire is not None else Questionnaire()
    rngs = rngs if rngs is not None else RngRegistry(truth.cfg.seed).spawn("surveys")
    rng = rngs.get("surveys.responses")
    cfg = truth.cfg
    responses: list[SurveyResponse] = []
    span = questionnaire.scale_max - questionnaire.scale_min

    for day in range(1, cfg.days + 1):
        mood = _day_mood(cfg, day)
        for astro in truth.roster.ids:
            trace = truth.trace(astro, day)
            if astro == DECEASED and not trace.present().any():
                continue  # the deceased files no surveys
            walking = float(trace.walking.mean())
            speaking = float(trace.speaking.mean())
            bias = RESPONSE_BIAS.get(astro, 0.0)

            base = {
                "satisfaction": mood,
                "wellbeing": 0.7 * mood + 0.3,
                "comfort": 0.8 - 0.2 * (1.0 - mood),
                "productivity": 0.45 + 0.5 * mood - 1.2 * max(walking - 0.06, 0.0),
                "distraction": 0.35 + 1.8 * speaking - 0.4 * mood,
            }
            answers = {}
            for dim, level in base.items():
                noisy = level + 0.12 * rng.normal() + bias / span
                value = questionnaire.scale_min + noisy * span
                answers[dim] = int(np.clip(round(value), questionnaire.scale_min,
                                           questionnaire.scale_max))
            questionnaire.validate_answers(answers)
            responses.append(SurveyResponse(astro_id=astro, day=day, answers=answers))
    return responses


def responses_by_day(responses: list[SurveyResponse]) -> dict[int, list[SurveyResponse]]:
    """Group responses by mission day."""
    out: dict[int, list[SurveyResponse]] = {}
    for response in responses:
        out.setdefault(response.day, []).append(response)
    return out
