"""Room-level localization from BLE scans.

"The room the badge located in was detected perfectly" because the metal
walls shield beacon signals; the detector maps each frame's strongest
beacon to that beacon's room, then applies a short majority filter to
absorb doorway leakage and shadowing flukes.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import ConfigError
from repro.localization.rssi import strongest_beacon


class RoomDetector:
    """Strongest-beacon room classification with a majority filter."""

    def __init__(self, beacon_rooms: np.ndarray, vote_window: int = 3):
        """Args:
            beacon_rooms: ``(n_beacons,)`` room index of each beacon.
            vote_window: odd number of frames for the majority filter
                (1 disables filtering).
        """
        if vote_window < 1 or vote_window % 2 == 0:
            raise ConfigError("vote_window must be a positive odd number")
        self.beacon_rooms = np.asarray(beacon_rooms, dtype=np.int64)
        self.vote_window = int(vote_window)

    def detect(self, rssi: np.ndarray, active: np.ndarray) -> np.ndarray:
        """Per-frame room estimate; -1 where inactive or nothing heard."""
        best = strongest_beacon(rssi)
        rooms = np.where(best >= 0, self.beacon_rooms[np.maximum(best, 0)], -1)
        rooms = rooms.astype(np.int8)
        inactive = ~np.asarray(active, dtype=bool)
        rooms[inactive] = -1
        if self.vote_window > 1:
            rooms = majority_filter(rooms, self.vote_window)
            rooms[inactive] = -1  # smoothing may not invent data gaps away
        return rooms


def majority_filter(rooms: np.ndarray, window: int) -> np.ndarray:
    """Sliding-window majority vote over an int8 label sequence.

    Negative labels (unknown) never win unless the whole window is
    unknown.  Implemented with per-label box sums, so the cost is
    O(frames * distinct_labels).
    """
    if window < 1 or window % 2 == 0:
        raise ConfigError("window must be a positive odd number")
    rooms = np.asarray(rooms)
    labels = np.unique(rooms[rooms >= 0])
    if labels.size == 0 or window == 1:
        return rooms.copy()
    n = rooms.shape[0]
    half = window // 2
    counts = np.zeros((labels.size, n), dtype=np.int32)
    for k, label in enumerate(labels):
        mask = (rooms == label).astype(np.int32)
        # Shifted in-place adds (edges clip naturally) — cheaper than a
        # cumsum plus two clipped index gathers per label.
        row = counts[k]
        for off in range(-half, half + 1):
            dst = slice(max(0, -off), n - max(0, off))
            src = slice(max(0, off), n - max(0, -off))
            row[dst] += mask[src]
    best = np.argmax(counts, axis=0)
    best_count = counts[best, np.arange(n)]
    out = np.where(best_count > 0, labels[best], -1).astype(rooms.dtype)
    return out
