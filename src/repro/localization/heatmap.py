"""Occupancy heatmaps on the paper's 28 cm grid.

Figure 3 presents "histograms with a logarithmic scale that present how
much time in total a given astronaut spent in a given area (with a
granularity of 28 cm x 28 cm squares)".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import ConfigError, DataError
from repro.habitat.geometry import Rect

#: The paper's grid granularity, meters.
CELL_SIZE_M = 0.28


@dataclass
class Heatmap:
    """Time-accumulating 2-D histogram over the habitat."""

    bounds: Rect
    cell_m: float
    counts: np.ndarray  # (ny, nx) float64 seconds

    @classmethod
    def empty(cls, bounds: Rect, cell_m: float = CELL_SIZE_M) -> "Heatmap":
        if cell_m <= 0:
            raise ConfigError("cell size must be positive")
        nx = max(1, int(np.ceil(bounds.width / cell_m)))
        ny = max(1, int(np.ceil(bounds.height / cell_m)))
        return cls(bounds=bounds, cell_m=cell_m, counts=np.zeros((ny, nx)))

    @property
    def shape(self) -> tuple[int, int]:
        return self.counts.shape

    def add(self, xs: np.ndarray, ys: np.ndarray, dt: float = 1.0) -> None:
        """Accumulate ``dt`` seconds for every (x, y) sample; NaNs skipped."""
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        if xs.shape != ys.shape:
            raise DataError("xs and ys must have the same shape")
        ok = ~(np.isnan(xs) | np.isnan(ys))
        ix = ((xs[ok] - self.bounds.x0) / self.cell_m).astype(np.int64)
        iy = ((ys[ok] - self.bounds.y0) / self.cell_m).astype(np.int64)
        ny, nx = self.counts.shape
        inside = (ix >= 0) & (ix < nx) & (iy >= 0) & (iy < ny)
        np.add.at(self.counts, (iy[inside], ix[inside]), dt)

    def total_seconds(self) -> float:
        """Total accumulated time."""
        return float(self.counts.sum())

    def log_counts(self) -> np.ndarray:
        """``log10(1 + seconds)`` — the paper's logarithmic scale."""
        return np.log10(1.0 + self.counts)

    def time_at(self, x: float, y: float) -> float:
        """Accumulated seconds in the cell containing ``(x, y)``."""
        ix = int((x - self.bounds.x0) / self.cell_m)
        iy = int((y - self.bounds.y0) / self.cell_m)
        ny, nx = self.counts.shape
        if not (0 <= ix < nx and 0 <= iy < ny):
            return 0.0
        return float(self.counts[iy, ix])

    def occupied_cells(self) -> int:
        """Number of cells with any accumulated time."""
        return int((self.counts > 0).sum())

    def center_vs_corner_ratio(self, room: Rect) -> float:
        """Ratio of time in a room's central half vs its corner band.

        The paper observes impaired astronaut A "tended to stay in the
        middle of a room [and] usually did not approach corners"; this
        statistic quantifies it (large ratio = center-bound).  The edge
        band is the outer third of the room's smaller extent — wide
        enough that ordinary bench work lands in it.
        """
        center = room.shrink(min(room.width, room.height) / 3.0)
        t_room = self._time_in(room)
        t_center = self._time_in(center)
        t_edge = max(t_room - t_center, 0.0)
        return t_center / t_edge if t_edge > 0 else np.inf

    def _time_in(self, rect: Rect) -> float:
        ny, nx = self.counts.shape
        xs = self.bounds.x0 + (np.arange(nx) + 0.5) * self.cell_m
        ys = self.bounds.y0 + (np.arange(ny) + 0.5) * self.cell_m
        col = (xs >= rect.x0) & (xs <= rect.x1)
        row = (ys >= rect.y0) & (ys <= rect.y1)
        return float(self.counts[np.ix_(row, col)].sum())


def build_heatmap(
    xs: np.ndarray, ys: np.ndarray, bounds: Rect, cell_m: float = CELL_SIZE_M, dt: float = 1.0
) -> Heatmap:
    """One-shot heatmap construction from position samples."""
    hm = Heatmap.empty(bounds, cell_m)
    hm.add(xs, ys, dt)
    return hm
