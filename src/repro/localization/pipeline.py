"""The end-to-end per-day localizer.

Scans -> (optional smoothing) -> room detection -> in-room weighted
centroid, with estimates clamped into the detected room's geometry.
This is the positioning algorithm "based on triangulation" the paper fed
its beacon messages into.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.errors import ConfigError
from repro.habitat.beacons import Beacon, beacon_positions, beacon_rooms
from repro.habitat.floorplan import FloorPlan
from repro.localization.room_detector import RoomDetector
from repro.localization.rssi import boxcar_smooth
from repro.localization.trilateration import localize_rooms
from repro.obs import _state as _obs
from repro.obs import metrics as _metrics
from repro.obs import span


@dataclass
class LocalizationResult:
    """Per-frame localization output for one badge-day."""

    room: np.ndarray   # int8; -1 unknown
    x: np.ndarray      # float32; NaN unknown
    y: np.ndarray      # float32; NaN unknown
    #: Beacons masked out of this day's scans (fault injection); room
    #: detection degraded gracefully instead of consuming dead columns.
    masked_beacons: tuple[int, ...] = ()

    def known_fraction(self) -> float:
        """Fraction of frames with a room fix."""
        return float((self.room >= 0).mean())


class Localizer:
    """Localizes badge-days from their BLE scan matrices."""

    def __init__(
        self,
        plan: FloorPlan,
        beacons: list[Beacon],
        smooth_window: int | None = 5,
        vote_window: int = 3,
        tx_power_dbm: float = -59.0,
        path_loss_exponent: float = 2.2,
        refine: bool = True,
    ):
        if not beacons:
            raise ConfigError("localizer needs at least one beacon")
        self.plan = plan
        self.beacons = beacons
        self.beacon_xy = beacon_positions(beacons)
        self.beacon_room = beacon_rooms(beacons).astype(np.int64)
        self.smooth_window = smooth_window
        self.detector = RoomDetector(self.beacon_room, vote_window=vote_window)
        self.tx_power_dbm = float(tx_power_dbm)
        self.path_loss_exponent = float(path_loss_exponent)
        self.refine = bool(refine)

    def localize_day(
        self,
        ble_rssi: np.ndarray,
        active: np.ndarray,
        dead_beacons: "Iterable[int] | None" = None,
    ) -> LocalizationResult:
        """Localize one badge-day.

        Deprecated thin wrapper (batch of 1) around
        :meth:`localize_fleet`; prefer the fleet call when localizing
        several badge-days.

        Args:
            ble_rssi: ``(frames, n_beacons)`` scan matrix.
            active: ``(frames,)`` recording mask.
            dead_beacons: beacon indices whose columns are masked to NaN
                before detection (beacon outage): the pipeline keeps
                detecting rooms from the surviving beacons at reduced
                confidence instead of crashing or consuming stale data.

        Returns:
            Room and position estimates per frame.
        """
        warnings.warn(
            "Localizer.localize_day is deprecated; use localize_fleet",
            DeprecationWarning, stacklevel=2,
        )
        return self.localize_fleet([ble_rssi], [active], dead_beacons=dead_beacons)[0]

    def localize_fleet(
        self,
        scans: "Sequence[np.ndarray]",
        actives: "Sequence[np.ndarray]",
        dead_beacons: "Iterable[int] | None" = None,
    ) -> list[LocalizationResult]:
        """Localize a whole fleet's badge-days in one batched call.

        Smoothing and room detection stay per badge (their windows must
        not leak across badge-days), then all frames are stacked and the
        position solve runs room-compacted over the whole fleet at once
        (:func:`repro.localization.trilateration.localize_rooms`).  Every
        per-frame estimate is row-independent, so each badge-day's result
        is bit-identical to localizing it alone.

        Args:
            scans: per badge, ``(frames, n_beacons)`` scan matrices.
            actives: per badge, ``(frames,)`` recording masks.
            dead_beacons: beacon indices masked to NaN for every badge.

        Returns:
            One :class:`LocalizationResult` per input badge-day.
        """
        if len(scans) != len(actives):
            raise ConfigError("scans and actives must align")
        if not scans:
            return []
        total = int(sum(s.shape[0] for s in scans))
        with span("localization.day", badges=len(scans), frames=total):
            masked: tuple[int, ...] = ()
            if dead_beacons:
                masked = tuple(sorted(
                    b for b in {int(b) for b in dead_beacons}
                    if 0 <= b < scans[0].shape[1]
                ))
            rooms = []
            smoothed = []
            with span("localization.room_detect", badges=len(scans)):
                for rssi, active in zip(scans, actives):
                    if masked:
                        rssi = rssi.copy()
                        rssi[:, list(masked)] = np.nan
                        if _obs.enabled:
                            _metrics.counter(
                                "localization.dead_beacon_days",
                                "badge-days localized with masked (dead) beacons",
                            ).inc()
                    if self.smooth_window is not None and self.smooth_window > 1:
                        rssi = boxcar_smooth(rssi, window=self.smooth_window)
                    smoothed.append(rssi)
                    rooms.append(self.detector.detect(rssi, active))
            room_all = np.concatenate(rooms)
            rssi_all = smoothed[0] if len(smoothed) == 1 else np.concatenate(smoothed)
            with span("localization.solve", badges=len(scans)):
                # Weighted centroid + optional Gauss-Newton, compacted to
                # each detected room's own beacon columns.  Range-based
                # least squares recovers positions outside the beacons'
                # convex hull (the centroid alone compresses the occupancy
                # maps toward the room centers).
                xy = localize_rooms(
                    rssi_all,
                    room_all,
                    self.beacon_xy,
                    self.beacon_room,
                    tx_power_dbm=self.tx_power_dbm,
                    path_loss_exponent=self.path_loss_exponent,
                    refine=self.refine,
                )
                xy = self._clamp_to_rooms(xy, room_all)
            results = []
            offset = 0
            for rssi in scans:
                n = rssi.shape[0]
                sl = slice(offset, offset + n)
                offset += n
                result = LocalizationResult(
                    room=room_all[sl].astype(np.int8),
                    x=xy[sl, 0].astype(np.float32),
                    y=xy[sl, 1].astype(np.float32),
                    masked_beacons=masked,
                )
                results.append(result)
                if _obs.enabled:
                    _metrics.counter(
                        "localization.days", "badge-days localized"
                    ).inc()
                    _metrics.histogram(
                        "localization.known_fraction", "fraction of frames with a room fix"
                    ).observe(result.known_fraction())
            return results

    def _clamp_to_rooms(self, xy: np.ndarray, room: np.ndarray) -> np.ndarray:
        """Clamp estimates into the detected room's rectangle."""
        out = np.array(xy, copy=True)
        eps = 1e-6  # keep clamped points off shared walls
        dtype = out.dtype
        bounds = np.array(
            [
                (r.rect.x0 + eps, r.rect.x1 - eps, r.rect.y0 + eps, r.rect.y1 - eps)
                for r in self.plan.rooms
            ],
            dtype=dtype,
        )
        safe = np.maximum(room, 0)
        out[:, 0] = np.clip(out[:, 0], bounds[safe, 0], bounds[safe, 1])
        out[:, 1] = np.clip(out[:, 1], bounds[safe, 2], bounds[safe, 3])
        out[room < 0] = np.nan
        return out
