"""The end-to-end per-day localizer.

Scans -> (optional smoothing) -> room detection -> in-room weighted
centroid, with estimates clamped into the detected room's geometry.
This is the positioning algorithm "based on triangulation" the paper fed
its beacon messages into.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.core.errors import ConfigError
from repro.habitat.beacons import Beacon, beacon_positions, beacon_rooms
from repro.habitat.floorplan import FloorPlan
from repro.localization.room_detector import RoomDetector
from repro.localization.rssi import boxcar_smooth
from repro.localization.trilateration import gauss_newton_batch, weighted_centroid
from repro.obs import _state as _obs
from repro.obs import metrics as _metrics
from repro.obs import span


@dataclass
class LocalizationResult:
    """Per-frame localization output for one badge-day."""

    room: np.ndarray   # int8; -1 unknown
    x: np.ndarray      # float32; NaN unknown
    y: np.ndarray      # float32; NaN unknown
    #: Beacons masked out of this day's scans (fault injection); room
    #: detection degraded gracefully instead of consuming dead columns.
    masked_beacons: tuple[int, ...] = ()

    def known_fraction(self) -> float:
        """Fraction of frames with a room fix."""
        return float((self.room >= 0).mean())


class Localizer:
    """Localizes badge-days from their BLE scan matrices."""

    def __init__(
        self,
        plan: FloorPlan,
        beacons: list[Beacon],
        smooth_window: int | None = 5,
        vote_window: int = 3,
        tx_power_dbm: float = -59.0,
        path_loss_exponent: float = 2.2,
        refine: bool = True,
    ):
        if not beacons:
            raise ConfigError("localizer needs at least one beacon")
        self.plan = plan
        self.beacons = beacons
        self.beacon_xy = beacon_positions(beacons)
        self.beacon_room = beacon_rooms(beacons).astype(np.int64)
        self.smooth_window = smooth_window
        self.detector = RoomDetector(self.beacon_room, vote_window=vote_window)
        self.tx_power_dbm = float(tx_power_dbm)
        self.path_loss_exponent = float(path_loss_exponent)
        self.refine = bool(refine)

    def localize_day(
        self,
        ble_rssi: np.ndarray,
        active: np.ndarray,
        dead_beacons: "Iterable[int] | None" = None,
    ) -> LocalizationResult:
        """Localize one badge-day.

        Args:
            ble_rssi: ``(frames, n_beacons)`` scan matrix.
            active: ``(frames,)`` recording mask.
            dead_beacons: beacon indices whose columns are masked to NaN
                before detection (beacon outage): the pipeline keeps
                detecting rooms from the surviving beacons at reduced
                confidence instead of crashing or consuming stale data.

        Returns:
            Room and position estimates per frame.
        """
        with span("localization.day", frames=int(ble_rssi.shape[0])):
            rssi = ble_rssi
            masked: tuple[int, ...] = ()
            if dead_beacons:
                masked = tuple(sorted(
                    b for b in {int(b) for b in dead_beacons}
                    if 0 <= b < rssi.shape[1]
                ))
            if masked:
                rssi = rssi.copy()
                rssi[:, list(masked)] = np.nan
                if _obs.enabled:
                    _metrics.counter(
                        "localization.dead_beacon_days",
                        "badge-days localized with masked (dead) beacons",
                    ).inc()
            if self.smooth_window is not None and self.smooth_window > 1:
                with span("localization.smooth"):
                    rssi = boxcar_smooth(rssi, window=self.smooth_window)
            with span("localization.room_detect"):
                room = self.detector.detect(rssi, active)

            # Restrict position estimation to the detected room's beacons.
            in_room_mask = self.beacon_room[None, :] == room[:, None]
            with span("localization.centroid"):
                xy = weighted_centroid(
                    rssi,
                    self.beacon_xy,
                    weight_mask=in_room_mask,
                    tx_power_dbm=self.tx_power_dbm,
                    path_loss_exponent=self.path_loss_exponent,
                )
            if self.refine:
                # Range-based least squares recovers positions outside the
                # beacons' convex hull (the centroid alone compresses the
                # occupancy maps toward the room centers).
                with span("localization.refine"):
                    xy = gauss_newton_batch(
                        xy, rssi, self.beacon_xy,
                        weight_mask=in_room_mask,
                        tx_power_dbm=self.tx_power_dbm,
                        path_loss_exponent=self.path_loss_exponent,
                    )
            xy = self._clamp_to_rooms(xy, room)
            result = LocalizationResult(
                room=room.astype(np.int8),
                x=xy[:, 0].astype(np.float32),
                y=xy[:, 1].astype(np.float32),
                masked_beacons=masked,
            )
            if _obs.enabled:
                _metrics.counter(
                    "localization.days", "badge-days localized"
                ).inc()
                _metrics.histogram(
                    "localization.known_fraction", "fraction of frames with a room fix"
                ).observe(result.known_fraction())
            return result

    def _clamp_to_rooms(self, xy: np.ndarray, room: np.ndarray) -> np.ndarray:
        """Clamp estimates into the detected room's rectangle."""
        out = xy.copy()
        eps = 1e-6  # keep clamped points off shared walls
        for room_idx in np.unique(room):
            if room_idx < 0:
                continue
            rect = self.plan.rooms[int(room_idx)].rect
            rows = room == room_idx
            out[rows, 0] = np.clip(out[rows, 0], rect.x0 + eps, rect.x1 - eps)
            out[rows, 1] = np.clip(out[rows, 1], rect.y0 + eps, rect.y1 - eps)
        unknown = room < 0
        out[unknown] = np.nan
        return out
