"""RSSI conditioning: exponential smoothing over noisy scan streams.

BLE RSSI carries several dB of shadowing noise frame to frame; a light
exponential moving average per beacon stabilizes both room votes and
centroid weights without adding meaningful lag at walking speeds.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import ConfigError


def ema_smooth(rssi: np.ndarray, alpha: float = 0.4, max_gap: int = 5) -> np.ndarray:
    """Exponentially smooth a ``(frames, beacons)`` RSSI matrix.

    NaNs (beacon not heard) do not update the average; the previous
    smoothed value is carried over for up to ``max_gap`` frames, after
    which the stream is considered lost and resets to NaN.

    Args:
        rssi: raw scan matrix, NaN = not heard.
        alpha: EMA weight of the newest sample.
        max_gap: maximum frames a stale value may be carried.

    Returns:
        Smoothed matrix of the same shape.
    """
    if not 0.0 < alpha <= 1.0:
        raise ConfigError("alpha must be in (0, 1]")
    if max_gap < 0:
        raise ConfigError("max_gap must be non-negative")
    rssi = np.asarray(rssi, dtype=np.float64)
    out = np.full_like(rssi, np.nan)
    state = np.full(rssi.shape[1], np.nan)
    staleness = np.zeros(rssi.shape[1], dtype=np.int64)
    for i in range(rssi.shape[0]):
        row = rssi[i]
        fresh = ~np.isnan(row)
        new_state = np.where(
            fresh,
            np.where(np.isnan(state), row, alpha * row + (1 - alpha) * state),
            state,
        )
        staleness = np.where(fresh, 0, staleness + 1)
        new_state = np.where(staleness > max_gap, np.nan, new_state)
        state = new_state
        out[i] = state
    return out


def boxcar_smooth(rssi: np.ndarray, window: int = 5) -> np.ndarray:
    """NaN-aware centered moving average over a ``(frames, beacons)`` matrix.

    Fully vectorized (one shifted add per window offset), so it is the
    default smoother in the localization pipeline; :func:`ema_smooth`
    remains available when strictly causal filtering matters.  Cells
    with no finite sample in their window stay NaN.  The input's float
    dtype is preserved (the pipeline smooths float32 scans in float32).
    """
    if window < 1:
        raise ConfigError("window must be >= 1")
    rssi = np.asarray(rssi)
    if not np.issubdtype(rssi.dtype, np.floating):
        rssi = rssi.astype(np.float64)
    if window == 1 or rssi.shape[0] == 0:
        return rssi.copy()
    n = rssi.shape[0]
    half = window // 2
    finite = np.isfinite(rssi)
    values = np.where(finite, rssi, rssi.dtype.type(0))
    counts_f = finite.astype(rssi.dtype)
    # Shifted in-place accumulation: one aligned add per window offset
    # (edges clip naturally), which beats a cumulative-sum formulation
    # because axis-0 cumsum strides column-wise through the matrix.  The
    # few-term sums also stay accurate in float32, so the input dtype is
    # preserved end to end.
    sums = np.zeros_like(values)
    counts = np.zeros_like(values)
    for off in range(-half, half + 1):
        dst = slice(max(0, -off), n - max(0, off))
        src = slice(max(0, off), n - max(0, -off))
        sums[dst] += values[src]
        counts[dst] += counts_f[src]
    # Empty windows divide 0/0 and land on NaN directly — no fill pass.
    with np.errstate(invalid="ignore", divide="ignore"):
        out = sums / counts
    return out


def strongest_beacon(rssi: np.ndarray) -> np.ndarray:
    """Index of the loudest beacon per frame; -1 where nothing is heard."""
    rssi = np.asarray(rssi)
    filled = np.where(np.isnan(rssi), -np.inf, rssi)
    best = np.argmax(filled, axis=1).astype(np.int64)
    # A frame is silent iff even its argmax cell is -inf — one gather
    # instead of a second full isfinite scan of the matrix.
    silent = filled[np.arange(filled.shape[0]), best] == -np.inf
    best[silent] = -1
    return best
