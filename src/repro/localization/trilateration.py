"""In-room position estimation from beacon RSSI.

The default estimator is an RSSI-weighted centroid over the detected
room's beacons — fast, vectorizable, and accurate to a few tens of
centimeters with three beacons per room.  A Gauss-Newton least-squares
refinement over inverted log-distance ranges is available for the
ablation study (it buys little inside small rooms, matching the paper's
remark that inertial fusion was unnecessary).
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import ConfigError


def rssi_to_distance(
    rssi_dbm: np.ndarray, tx_power_dbm: float = -59.0, path_loss_exponent: float = 2.2
) -> np.ndarray:
    """Invert the log-distance model: estimated range in meters."""
    if path_loss_exponent <= 0:
        raise ConfigError("path_loss_exponent must be positive")
    return 10.0 ** ((tx_power_dbm - np.asarray(rssi_dbm)) / (10.0 * path_loss_exponent))


def weighted_centroid(
    rssi: np.ndarray,
    beacon_xy: np.ndarray,
    weight_mask: np.ndarray | None = None,
    tx_power_dbm: float = -59.0,
    path_loss_exponent: float = 2.2,
    weight_power: float = 2.0,
) -> np.ndarray:
    """Vectorized weighted-centroid position estimate.

    Args:
        rssi: ``(frames, beacons)`` matrix, NaN = not heard.
        beacon_xy: ``(beacons, 2)`` surveyed beacon positions.
        weight_mask: optional ``(frames, beacons)`` boolean mask limiting
            which beacons may contribute per frame (e.g. only the
            detected room's beacons).
        tx_power_dbm, path_loss_exponent: ranging model parameters.
        weight_power: beacons are weighted ``1 / d**weight_power``.

    Returns:
        ``(frames, 2)`` position estimates; NaN rows where no beacon
        contributed.
    """
    rssi = np.asarray(rssi, dtype=np.float64)
    usable = ~np.isnan(rssi)
    if weight_mask is not None:
        usable &= np.asarray(weight_mask, dtype=bool)
    d = rssi_to_distance(np.where(usable, rssi, 0.0), tx_power_dbm, path_loss_exponent)
    with np.errstate(divide="ignore"):
        w = np.where(usable, 1.0 / np.maximum(d, 0.05) ** weight_power, 0.0)
    total = w.sum(axis=1)
    out = np.full((rssi.shape[0], 2), np.nan)
    ok = total > 0
    out[ok, 0] = (w[ok] @ beacon_xy[:, 0]) / total[ok]
    out[ok, 1] = (w[ok] @ beacon_xy[:, 1]) / total[ok]
    return out


def gauss_newton_batch(
    initial_xy: np.ndarray,
    rssi: np.ndarray,
    beacon_xy: np.ndarray,
    weight_mask: np.ndarray | None = None,
    tx_power_dbm: float = -59.0,
    path_loss_exponent: float = 2.2,
    iterations: int = 6,
    damping: float = 1e-2,
) -> np.ndarray:
    """Vectorized Gauss-Newton range refinement over many frames at once.

    Unlike the weighted centroid, range-based least squares can place a
    badge *outside* the beacons' convex hull, recovering the true spatial
    spread of occupancy (essential for the Fig-3 heatmaps).  Frames with
    fewer than two usable beacons keep their initial estimate.

    Args:
        initial_xy: ``(frames, 2)`` starting points (NaN rows skipped).
        rssi: ``(frames, beacons)`` scan matrix.
        beacon_xy: ``(beacons, 2)`` positions.
        weight_mask: optional per-frame beacon eligibility mask.
        tx_power_dbm, path_loss_exponent: ranging model.
        iterations: Gauss-Newton steps (vectorized across frames).
        damping: Levenberg-style diagonal damping.

    Returns:
        ``(frames, 2)`` refined positions.
    """
    rssi = np.asarray(rssi, dtype=np.float64)
    usable = ~np.isnan(rssi)
    if weight_mask is not None:
        usable &= np.asarray(weight_mask, dtype=bool)
    ranges = rssi_to_distance(np.where(usable, rssi, 0.0), tx_power_dbm, path_loss_exponent)
    p = np.array(initial_xy, dtype=np.float64, copy=True)
    live = usable.sum(axis=1) >= 2
    live &= ~np.isnan(p).any(axis=1)
    if not live.any():
        return p
    w = usable[live].astype(np.float64)
    r = ranges[live]
    x = p[live]
    bx = beacon_xy[:, 0][None, :]
    by = beacon_xy[:, 1][None, :]
    for _ in range(iterations):
        dx = x[:, 0:1] - bx
        dy = x[:, 1:2] - by
        dist = np.maximum(np.hypot(dx, dy), 1e-6)
        residual = (dist - r) * w
        jx = dx / dist
        jy = dy / dist
        a = (w * jx * jx).sum(axis=1) + damping
        b = (w * jx * jy).sum(axis=1)
        d = (w * jy * jy).sum(axis=1) + damping
        gx = (jx * residual).sum(axis=1)
        gy = (jy * residual).sum(axis=1)
        det = a * d - b * b
        det = np.where(np.abs(det) < 1e-12, 1e-12, det)
        step_x = (d * gx - b * gy) / det
        step_y = (a * gy - b * gx) / det
        x[:, 0] -= step_x
        x[:, 1] -= step_y
    p[live] = x
    return p


def gauss_newton_refine(
    initial_xy: np.ndarray,
    ranges_m: np.ndarray,
    beacon_xy: np.ndarray,
    iterations: int = 5,
    damping: float = 1e-3,
) -> np.ndarray:
    """Refine one position by nonlinear least squares over range estimates.

    Args:
        initial_xy: ``(2,)`` starting point (e.g. the weighted centroid).
        ranges_m: ``(k,)`` estimated distances to ``k`` beacons.
        beacon_xy: ``(k, 2)`` those beacons' positions.
        iterations: Gauss-Newton steps.
        damping: Levenberg-style diagonal damping.

    Returns:
        Refined ``(2,)`` position.
    """
    if ranges_m.shape[0] != beacon_xy.shape[0]:
        raise ConfigError("ranges and beacons must align")
    if ranges_m.shape[0] < 2:
        return np.asarray(initial_xy, dtype=np.float64).copy()
    p = np.asarray(initial_xy, dtype=np.float64).copy()
    for _ in range(iterations):
        diff = p[None, :] - beacon_xy
        dist = np.maximum(np.hypot(diff[:, 0], diff[:, 1]), 1e-6)
        residual = dist - ranges_m
        jacobian = diff / dist[:, None]
        jtj = jacobian.T @ jacobian + damping * np.eye(2)
        jtr = jacobian.T @ residual
        try:
            step = np.linalg.solve(jtj, jtr)
        except np.linalg.LinAlgError:
            break
        p -= step
        if np.hypot(step[0], step[1]) < 1e-4:
            break
    return p
