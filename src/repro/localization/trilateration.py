"""In-room position estimation from beacon RSSI.

The default estimator is an RSSI-weighted centroid over the detected
room's beacons — fast, vectorizable, and accurate to a few tens of
centimeters with three beacons per room.  A Gauss-Newton least-squares
refinement over inverted log-distance ranges is available for the
ablation study (it buys little inside small rooms, matching the paper's
remark that inertial fusion was unnecessary).
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import ConfigError


def rssi_to_distance(
    rssi_dbm: np.ndarray, tx_power_dbm: float = -59.0, path_loss_exponent: float = 2.2
) -> np.ndarray:
    """Invert the log-distance model: estimated range in meters."""
    if path_loss_exponent <= 0:
        raise ConfigError("path_loss_exponent must be positive")
    return 10.0 ** ((tx_power_dbm - np.asarray(rssi_dbm)) / (10.0 * path_loss_exponent))


def weighted_centroid(
    rssi: np.ndarray,
    beacon_xy: np.ndarray,
    weight_mask: np.ndarray | None = None,
    tx_power_dbm: float = -59.0,
    path_loss_exponent: float = 2.2,
    weight_power: float = 2.0,
) -> np.ndarray:
    """Vectorized weighted-centroid position estimate.

    Args:
        rssi: ``(frames, beacons)`` matrix, NaN = not heard.
        beacon_xy: ``(beacons, 2)`` surveyed beacon positions.
        weight_mask: optional ``(frames, beacons)`` boolean mask limiting
            which beacons may contribute per frame (e.g. only the
            detected room's beacons).
        tx_power_dbm, path_loss_exponent: ranging model parameters.
        weight_power: beacons are weighted ``1 / d**weight_power``.

    Returns:
        ``(frames, 2)`` position estimates; NaN rows where no beacon
        contributed.
    """
    rssi = np.asarray(rssi, dtype=np.float64)
    usable = ~np.isnan(rssi)
    if weight_mask is not None:
        usable &= np.asarray(weight_mask, dtype=bool)
    d = rssi_to_distance(np.where(usable, rssi, 0.0), tx_power_dbm, path_loss_exponent)
    with np.errstate(divide="ignore"):
        w = np.where(usable, 1.0 / np.maximum(d, 0.05) ** weight_power, 0.0)
    total = w.sum(axis=1)
    out = np.full((rssi.shape[0], 2), np.nan)
    ok = total > 0
    out[ok, 0] = (w[ok] @ beacon_xy[:, 0]) / total[ok]
    out[ok, 1] = (w[ok] @ beacon_xy[:, 1]) / total[ok]
    return out


def gauss_newton_batch(
    initial_xy: np.ndarray,
    rssi: np.ndarray,
    beacon_xy: np.ndarray,
    weight_mask: np.ndarray | None = None,
    tx_power_dbm: float = -59.0,
    path_loss_exponent: float = 2.2,
    iterations: int = 6,
    damping: float = 1e-2,
) -> np.ndarray:
    """Vectorized Gauss-Newton range refinement over many frames at once.

    Unlike the weighted centroid, range-based least squares can place a
    badge *outside* the beacons' convex hull, recovering the true spatial
    spread of occupancy (essential for the Fig-3 heatmaps).  Frames with
    fewer than two usable beacons keep their initial estimate.

    Args:
        initial_xy: ``(frames, 2)`` starting points (NaN rows skipped).
        rssi: ``(frames, beacons)`` scan matrix.
        beacon_xy: ``(beacons, 2)`` positions.
        weight_mask: optional per-frame beacon eligibility mask.
        tx_power_dbm, path_loss_exponent: ranging model.
        iterations: Gauss-Newton steps (vectorized across frames).
        damping: Levenberg-style diagonal damping.

    Returns:
        ``(frames, 2)`` refined positions.
    """
    rssi = np.asarray(rssi, dtype=np.float64)
    usable = ~np.isnan(rssi)
    if weight_mask is not None:
        usable &= np.asarray(weight_mask, dtype=bool)
    ranges = rssi_to_distance(np.where(usable, rssi, 0.0), tx_power_dbm, path_loss_exponent)
    p = np.array(initial_xy, dtype=np.float64, copy=True)
    live = usable.sum(axis=1) >= 2
    live &= ~np.isnan(p).any(axis=1)
    if not live.any():
        return p
    w = usable[live].astype(np.float64)
    r = ranges[live]
    x = p[live]
    bx = beacon_xy[:, 0][None, :]
    by = beacon_xy[:, 1][None, :]
    for _ in range(iterations):
        dx = x[:, 0:1] - bx
        dy = x[:, 1:2] - by
        dist = np.maximum(np.hypot(dx, dy), 1e-6)
        residual = (dist - r) * w
        jx = dx / dist
        jy = dy / dist
        a = (w * jx * jx).sum(axis=1) + damping
        b = (w * jx * jy).sum(axis=1)
        d = (w * jy * jy).sum(axis=1) + damping
        gx = (jx * residual).sum(axis=1)
        gy = (jy * residual).sum(axis=1)
        det = a * d - b * b
        det = np.where(np.abs(det) < 1e-12, 1e-12, det)
        step_x = (d * gx - b * gy) / det
        step_y = (a * gy - b * gx) / det
        x[:, 0] -= step_x
        x[:, 1] -= step_y
    p[live] = x
    return p


def localize_rooms(
    rssi: np.ndarray,
    rooms: np.ndarray,
    beacon_xy: np.ndarray,
    beacon_room: np.ndarray,
    tx_power_dbm: float = -59.0,
    path_loss_exponent: float = 2.2,
    refine: bool = True,
    iterations: int = 6,
    damping: float = 1e-2,
    weight_power: float = 2.0,
) -> np.ndarray:
    """Room-compacted weighted centroid plus optional Gauss-Newton pass.

    The per-frame estimators above mask the scan matrix down to the
    detected room's beacons but still sweep all ``beacons`` columns;
    with ~3 beacons per room that is ~10x wasted work.  This variant
    gathers, per detected room, only the frames in that room and only
    that room's beacon columns, runs the centroid and the refinement on
    the compact block, and scatters the estimates back.  Frames may come
    from any number of badge-days stacked along axis 0 — every step is
    row-independent, so batching badges cannot change any row's result.

    Args:
        rssi: ``(frames, beacons)`` scan matrix (NaN = not heard).
        rooms: ``(frames,)`` detected room per frame; negative = unknown.
        beacon_xy: ``(beacons, 2)`` surveyed positions.
        beacon_room: ``(beacons,)`` room index per beacon.
        tx_power_dbm, path_loss_exponent, weight_power: ranging model.
        refine: run the Gauss-Newton refinement after the centroid.
        iterations, damping: refinement parameters.

    Returns:
        ``(frames, 2)`` float32 estimates; NaN where no room or no
        usable in-room beacon.  The solve runs in float32 — sub-dB
        scan noise swamps the last float bits, and the pipeline stores
        positions as float32 anyway.
    """
    if path_loss_exponent <= 0:
        raise ConfigError("path_loss_exponent must be positive")
    n = rssi.shape[0]
    out = np.full((n, 2), np.nan, dtype=np.float32)
    zero = np.float32(0.0)
    for room_idx in np.unique(rooms):
        if room_idx < 0:
            continue
        cols = np.flatnonzero(beacon_room == room_idx)
        if cols.size == 0:
            continue
        rows = np.flatnonzero(rooms == room_idx)
        sub = rssi[np.ix_(rows, cols)].astype(np.float32, copy=False)
        usable = ~np.isnan(sub)
        d = np.float32(10.0) ** (
            (tx_power_dbm - np.where(usable, sub, zero))
            / np.float32(10.0 * path_loss_exponent)
        )
        w = np.where(usable, 1.0 / np.maximum(d, np.float32(0.05)) ** weight_power, zero)
        total = w.sum(axis=1)
        ok = total > 0
        bx = beacon_xy[cols, 0].astype(np.float32)
        by = beacon_xy[cols, 1].astype(np.float32)
        x = np.full(rows.size, np.nan, dtype=np.float32)
        y = np.full(rows.size, np.nan, dtype=np.float32)
        # Explicit multiply-sum (not ``@``): BLAS picks size-dependent
        # matvec kernels, which would break bit-identity between a batch
        # of one and the same rows inside a fleet batch.
        x[ok] = (w[ok] * bx).sum(axis=1) / total[ok]
        y[ok] = (w[ok] * by).sum(axis=1) / total[ok]
        if refine:
            live = ok & (usable.sum(axis=1) >= 2)
            # Rows that hear *every* in-room beacon (virtually all of
            # them after smoothing) take an unweighted fast path: with
            # cw == 1 everywhere, dropping the weight multiplies changes
            # no bits (x * 1.0f == x).  The few partial rows keep the
            # general weighted loop.  Both splits are per-row decisions,
            # so batching cannot change any row's path or result.
            full = live & usable.all(axis=1)
            part = live & ~full
            for mask, weighted in ((full, False), (part, True)):
                if not mask.any():
                    continue
                cw = usable[mask].astype(np.float32) if weighted else None
                cr = d[mask]
                cx = x[mask]
                cy = y[mask]
                lbx = bx[None, :]
                lby = by[None, :]
                shape = cr.shape
                dx = np.empty(shape, dtype=np.float32)
                dy = np.empty(shape, dtype=np.float32)
                dist = np.empty(shape, dtype=np.float32)
                residual = np.empty(shape, dtype=np.float32)
                jx = np.empty(shape, dtype=np.float32)
                jy = np.empty(shape, dtype=np.float32)
                for _ in range(iterations):
                    np.subtract(cx[:, None], lbx, out=dx)
                    np.subtract(cy[:, None], lby, out=dy)
                    np.multiply(dx, dx, out=dist)
                    np.multiply(dy, dy, out=jx)  # jx doubles as a scratch
                    dist += jx
                    np.sqrt(dist, out=dist)
                    np.maximum(dist, np.float32(1e-6), out=dist)
                    np.subtract(dist, cr, out=residual)
                    np.divide(np.float32(1.0), dist, out=dist)  # now 1/dist
                    np.multiply(dx, dist, out=jx)
                    np.multiply(dy, dist, out=jy)
                    if weighted:
                        residual *= cw
                        wjx = cw * jx
                        wjy = cw * jy
                    else:
                        wjx = jx
                        wjy = jy
                    a = np.einsum("ij,ij->i", wjx, jx) + damping
                    b = np.einsum("ij,ij->i", wjx, jy)
                    dd = np.einsum("ij,ij->i", wjy, jy) + damping
                    gx = np.einsum("ij,ij->i", jx, residual)
                    gy = np.einsum("ij,ij->i", jy, residual)
                    det = a * dd - b * b
                    det = np.where(np.abs(det) < 1e-12, 1e-12, det)
                    cx -= (dd * gx - b * gy) / det
                    cy -= (a * gy - b * gx) / det
                x[mask] = cx
                y[mask] = cy
        out[rows, 0] = x
        out[rows, 1] = y
    return out


def gauss_newton_refine(
    initial_xy: np.ndarray,
    ranges_m: np.ndarray,
    beacon_xy: np.ndarray,
    iterations: int = 5,
    damping: float = 1e-3,
) -> np.ndarray:
    """Refine one position by nonlinear least squares over range estimates.

    Args:
        initial_xy: ``(2,)`` starting point (e.g. the weighted centroid).
        ranges_m: ``(k,)`` estimated distances to ``k`` beacons.
        beacon_xy: ``(k, 2)`` those beacons' positions.
        iterations: Gauss-Newton steps.
        damping: Levenberg-style diagonal damping.

    Returns:
        Refined ``(2,)`` position.
    """
    if ranges_m.shape[0] != beacon_xy.shape[0]:
        raise ConfigError("ranges and beacons must align")
    if ranges_m.shape[0] < 2:
        return np.asarray(initial_xy, dtype=np.float64).copy()
    p = np.asarray(initial_xy, dtype=np.float64).copy()
    for _ in range(iterations):
        diff = p[None, :] - beacon_xy
        dist = np.maximum(np.hypot(diff[:, 0], diff[:, 1]), 1e-6)
        residual = dist - ranges_m
        jacobian = diff / dist[:, None]
        jtj = jacobian.T @ jacobian + damping * np.eye(2)
        jtr = jacobian.T @ residual
        try:
            step = np.linalg.solve(jtj, jtr)
        except np.linalg.LinAlgError:
            break
        p -= step
        if np.hypot(step[0], step[1]) < 1e-4:
            break
    return p
