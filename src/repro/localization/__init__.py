"""Localization pipeline: BLE scans -> rooms and in-room positions.

RSSI smoothing, strongest-beacon room detection (perfect in the shielded
habitat, modulo doorway leakage), weighted-centroid trilateration with
an optional Gauss-Newton refinement, 1-second dominant-position frames,
and the 28 cm heatmap grids of the paper's Figure 3.
"""

from repro.localization.heatmap import Heatmap, build_heatmap
from repro.localization.pipeline import LocalizationResult, Localizer
from repro.localization.room_detector import RoomDetector
from repro.localization.rssi import ema_smooth
from repro.localization.trilateration import gauss_newton_refine, weighted_centroid

__all__ = [
    "Heatmap",
    "LocalizationResult",
    "Localizer",
    "RoomDetector",
    "build_heatmap",
    "ema_smooth",
    "gauss_newton_refine",
    "weighted_centroid",
]
