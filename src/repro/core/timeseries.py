"""Regularly-sampled time series on a per-day grid.

Ground-truth traces and sensor observations are stored as 1 Hz (by
default) arrays covering one mission day's *daytime*.  ``TimeSeries``
bundles the grid definition with the samples and provides windowed
reductions used by the analytics (15-second speech intervals, 1-second
dominant-position frames, etc.).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.errors import DataError
from repro.core.intervals import IntervalSet


class TimeSeries:
    """Samples on a regular grid ``t0 + i * dt`` for ``i in range(n)``.

    Sample ``i`` describes the half-open slice ``[t0 + i*dt, t0 + (i+1)*dt)``.
    """

    __slots__ = ("t0", "dt", "values")

    def __init__(self, t0: float, dt: float, values: np.ndarray):
        if dt <= 0:
            raise DataError("dt must be positive")
        values = np.asarray(values)
        if values.ndim < 1:
            raise DataError("values must have at least one dimension")
        self.t0 = float(t0)
        self.dt = float(dt)
        self.values = values

    def __len__(self) -> int:
        return int(self.values.shape[0])

    @property
    def t1(self) -> float:
        """End of the covered window."""
        return self.t0 + len(self) * self.dt

    def times(self) -> np.ndarray:
        """Sample start timestamps."""
        return self.t0 + np.arange(len(self)) * self.dt

    def index_of(self, t: float) -> int:
        """Grid index covering timestamp ``t``."""
        if not self.t0 <= t < self.t1:
            raise DataError(f"timestamp {t} outside [{self.t0}, {self.t1})")
        return int((t - self.t0) // self.dt)

    def at(self, t: float) -> np.ndarray:
        """Sample value covering timestamp ``t``."""
        return self.values[self.index_of(t)]

    def slice(self, lo: float, hi: float) -> "TimeSeries":
        """Sub-series covering ``[lo, hi)`` (clipped to the grid)."""
        i0 = max(0, int(np.ceil((lo - self.t0) / self.dt - 1e-9)))
        i1 = min(len(self), int(np.ceil((hi - self.t0) / self.dt - 1e-9)))
        i1 = max(i0, i1)
        return TimeSeries(self.t0 + i0 * self.dt, self.dt, self.values[i0:i1])

    def where(self, predicate: Callable[[np.ndarray], np.ndarray]) -> IntervalSet:
        """Intervals on which ``predicate(values)`` is true."""
        mask = np.asarray(predicate(self.values), dtype=bool)
        if mask.shape != (len(self),):
            raise DataError("predicate must return one boolean per sample")
        return IntervalSet.from_mask(mask, t0=self.t0, dt=self.dt)

    def downsample(self, factor: int, reduce: Callable[[np.ndarray], np.ndarray] = None) -> "TimeSeries":
        """Reduce blocks of ``factor`` samples into one (default: mean).

        A trailing partial block is dropped; ``reduce`` is applied along
        axis 1 of the ``(blocks, factor, ...)`` reshaped array.
        """
        if factor < 1:
            raise DataError("factor must be >= 1")
        blocks = len(self) // factor
        trimmed = self.values[: blocks * factor]
        shaped = trimmed.reshape((blocks, factor) + trimmed.shape[1:])
        if reduce is None:
            reduced = shaped.mean(axis=1)
        else:
            reduced = reduce(shaped)
        return TimeSeries(self.t0, self.dt * factor, reduced)

    def windowed_fraction(self, window_s: float, mask: np.ndarray) -> "TimeSeries":
        """Per-window fraction of true samples; the paper's 15-second
        speech-interval reduction is ``windowed_fraction(15.0, loud_mask)``."""
        factor = int(round(window_s / self.dt))
        if factor < 1:
            raise DataError("window shorter than the sampling period")
        mask = np.asarray(mask, dtype=float)
        if mask.shape[0] != len(self):
            raise DataError("mask length mismatch")
        blocks = len(self) // factor
        fractions = mask[: blocks * factor].reshape(blocks, factor).mean(axis=1)
        return TimeSeries(self.t0, self.dt * factor, fractions)
