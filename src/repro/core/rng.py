"""Deterministic named random-number streams.

Every stochastic component of the simulation draws from its own named
stream derived from a single master seed.  This gives two properties the
experiments rely on:

* **Reproducibility** — the same :class:`~repro.core.config.MissionConfig`
  seed always produces the same mission, figures, and tables.
* **Isolation** — adding draws to one component (say, the microphone
  noise model) does not perturb any other component's stream, so
  calibrated behaviour stays calibrated as the codebase evolves.
"""

from __future__ import annotations

import hashlib

import numpy as np


def stable_hash(text: str) -> int:
    """Return a stable 64-bit integer hash of ``text``.

    Python's builtin :func:`hash` is salted per process, so it cannot be
    used to derive reproducible seeds; we use BLAKE2b instead.
    """
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


class RngRegistry:
    """A factory of independent, deterministic ``numpy`` generators.

    >>> rngs = RngRegistry(seed=42)
    >>> a = rngs.get("crew.movement")
    >>> b = rngs.get("crew.movement")
    >>> a is b
    True
    """

    def __init__(self, seed: int):
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The master seed this registry was created with."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator
        object, so draws within a component are sequential; distinct
        names get statistically independent streams.
        """
        stream = self._streams.get(name)
        if stream is None:
            seq = np.random.SeedSequence(entropy=self._seed, spawn_key=(stable_hash(name),))
            stream = np.random.default_rng(seq)
            self._streams[name] = stream
        return stream

    def fresh(self, name: str) -> np.random.Generator:
        """Return a *new* generator for ``name``, reset to its start.

        Useful in tests to verify that a component is deterministic
        given its stream.
        """
        seq = np.random.SeedSequence(entropy=self._seed, spawn_key=(stable_hash(name),))
        return np.random.default_rng(seq)

    def spawn(self, name: str) -> "RngRegistry":
        """Derive a child registry whose streams are independent of ours."""
        return RngRegistry(stable_hash(f"{self._seed}/{name}"))

    def names(self) -> list[str]:
        """Names of all streams created so far (sorted)."""
        return sorted(self._streams)


# -- mission sensing sub-streams --------------------------------------
#
# The sensing stage draws exclusively from *day-scoped* streams of one
# derived registry.  Because every stream is addressed by name (not by
# draw order), a worker process that replays only day ``d`` builds
# bit-identical streams to a serial run that walked days 2..d first —
# the property ``repro.exec`` relies on to fan badge-days out across a
# process pool without changing a single sample.


def mission_sensing_registry(seed: int) -> RngRegistry:
    """The registry the sensing stage draws from, derived from ``seed``.

    Both the serial driver and every parallel worker MUST obtain their
    sensing streams through this helper so the derivation stays
    single-sourced; constructing the registry any other way silently
    breaks serial/parallel bit-equality.
    """
    return RngRegistry(seed).spawn("sensing")


def badge_day_stream(badge_id: int, day: int) -> str:
    """Stream name for one badge's sensor synthesis on one day."""
    return f"badges.{badge_id}.day{day}"


def pairwise_day_stream(day: int) -> str:
    """Stream name for the badge-to-badge (IR / sub-GHz) synthesis of a day."""
    return f"badges.pairwise.day{day}"


def fleet_stream() -> str:
    """Stream name for badge-fleet creation (clock offsets and drifts).

    Day-independent on purpose: the fleet is hardware state fixed at
    deployment, so every worker recreates the identical fleet from it.
    """
    return "badges.fleet"
