"""Deterministic named random-number streams.

Every stochastic component of the simulation draws from its own named
stream derived from a single master seed.  This gives two properties the
experiments rely on:

* **Reproducibility** — the same :class:`~repro.core.config.MissionConfig`
  seed always produces the same mission, figures, and tables.
* **Isolation** — adding draws to one component (say, the microphone
  noise model) does not perturb any other component's stream, so
  calibrated behaviour stays calibrated as the codebase evolves.
"""

from __future__ import annotations

import hashlib

import numpy as np


def stable_hash(text: str) -> int:
    """Return a stable 64-bit integer hash of ``text``.

    Python's builtin :func:`hash` is salted per process, so it cannot be
    used to derive reproducible seeds; we use BLAKE2b instead.
    """
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


class RngRegistry:
    """A factory of independent, deterministic ``numpy`` generators.

    >>> rngs = RngRegistry(seed=42)
    >>> a = rngs.get("crew.movement")
    >>> b = rngs.get("crew.movement")
    >>> a is b
    True
    """

    def __init__(self, seed: int):
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The master seed this registry was created with."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator
        object, so draws within a component are sequential; distinct
        names get statistically independent streams.
        """
        stream = self._streams.get(name)
        if stream is None:
            seq = np.random.SeedSequence(entropy=self._seed, spawn_key=(stable_hash(name),))
            stream = np.random.default_rng(seq)
            self._streams[name] = stream
        return stream

    def fresh(self, name: str) -> np.random.Generator:
        """Return a *new* generator for ``name``, reset to its start.

        Useful in tests to verify that a component is deterministic
        given its stream.
        """
        seq = np.random.SeedSequence(entropy=self._seed, spawn_key=(stable_hash(name),))
        return np.random.default_rng(seq)

    def spawn(self, name: str) -> "RngRegistry":
        """Derive a child registry whose streams are independent of ours."""
        return RngRegistry(stable_hash(f"{self._seed}/{name}"))

    def names(self) -> list[str]:
        """Names of all streams created so far (sorted)."""
        return sorted(self._streams)
