"""Core simulation kernel for the ``repro`` library.

This subpackage is paper-agnostic infrastructure: a discrete-event
simulation engine, simulated clocks (including Martian time, which the
ICAres-1 crew lived on), deterministic named random-number streams,
interval/time-series containers used throughout the sensing pipeline,
configuration dataclasses, and dataset storage.
"""

from repro.core.clock import EARTH_DAY_S, MARS_SOL_S, ClockModel, MartianClock, MissionClock
from repro.core.config import MissionConfig, ScriptedEventsConfig
from repro.core.engine import Event, Simulator
from repro.core.errors import ConfigError, ReproError, SimulationError
from repro.core.intervals import IntervalSet
from repro.core.rng import RngRegistry, stable_hash
from repro.core.storage import DataStore
from repro.core.timeseries import TimeSeries

__all__ = [
    "EARTH_DAY_S",
    "MARS_SOL_S",
    "ClockModel",
    "ConfigError",
    "DataStore",
    "Event",
    "IntervalSet",
    "MartianClock",
    "MissionClock",
    "MissionConfig",
    "ReproError",
    "RngRegistry",
    "ScriptedEventsConfig",
    "SimulationError",
    "Simulator",
    "TimeSeries",
    "stable_hash",
]
