"""Exception hierarchy for the ``repro`` library.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything from this package with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class SimulationError(ReproError):
    """The simulation reached an invalid state (a bug or misuse)."""


class DataError(ReproError):
    """A dataset is missing, malformed, or inconsistent."""


class ProtocolError(ReproError):
    """A distributed-system protocol invariant was violated."""
