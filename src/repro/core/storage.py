"""A small keyed dataset store with directory persistence.

Mission outputs (ground truth, sensor observations, analysis products)
are keyed by string tuples like ``("gt", "A", "4")`` and hold numpy
arrays or JSON-serializable metadata.  The store can round-trip to a
directory of ``.npz`` / ``.json`` files so experiments can cache the
expensive simulation step.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterator

import numpy as np

from repro.core.errors import DataError

_KEY_SEP = "__"


def _encode_key(key: tuple[str, ...]) -> str:
    for part in key:
        if _KEY_SEP in part or "/" in part:
            raise DataError(f"key part {part!r} contains a reserved character")
    return _KEY_SEP.join(key)


def _decode_key(name: str) -> tuple[str, ...]:
    return tuple(name.split(_KEY_SEP))


class DataStore:
    """In-memory map from key tuples to array bundles and metadata."""

    def __init__(self) -> None:
        self._arrays: dict[tuple[str, ...], dict[str, np.ndarray]] = {}
        self._meta: dict[tuple[str, ...], Any] = {}

    # -- arrays --------------------------------------------------------

    def put_arrays(self, key: tuple[str, ...], **arrays: np.ndarray) -> None:
        """Store a named bundle of arrays under ``key`` (replaces any prior)."""
        self._arrays[key] = {name: np.asarray(arr) for name, arr in arrays.items()}

    def get_arrays(self, key: tuple[str, ...]) -> dict[str, np.ndarray]:
        """Fetch the array bundle stored under ``key``."""
        try:
            return self._arrays[key]
        except KeyError:
            raise DataError(f"no arrays stored under key {key!r}") from None

    def has_arrays(self, key: tuple[str, ...]) -> bool:
        """Whether an array bundle exists for ``key``."""
        return key in self._arrays

    # -- metadata -------------------------------------------------------

    def put_meta(self, key: tuple[str, ...], value: Any) -> None:
        """Store JSON-serializable metadata under ``key``."""
        json.dumps(value)  # fail fast on unserializable input
        self._meta[key] = value

    def get_meta(self, key: tuple[str, ...]) -> Any:
        """Fetch metadata stored under ``key``."""
        try:
            return self._meta[key]
        except KeyError:
            raise DataError(f"no metadata stored under key {key!r}") from None

    # -- enumeration ----------------------------------------------------

    def keys(self, prefix: tuple[str, ...] = ()) -> Iterator[tuple[str, ...]]:
        """All array keys starting with ``prefix``, sorted."""
        for key in sorted(self._arrays):
            if key[: len(prefix)] == prefix:
                yield key

    def __len__(self) -> int:
        return len(self._arrays) + len(self._meta)

    # -- persistence ------------------------------------------------------

    def to_payload(self) -> dict:
        """Plain-dict snapshot of the store for single-file persistence."""
        return {"arrays": dict(self._arrays), "meta": dict(self._meta)}

    @classmethod
    def from_payload(cls, payload: dict) -> "DataStore":
        """Rebuild a store from a :meth:`to_payload` snapshot."""
        store = cls()
        store._arrays = {tuple(k): dict(v) for k, v in payload["arrays"].items()}
        store._meta = {tuple(k): v for k, v in payload["meta"].items()}
        return store

    def save_dir(self, path: str | Path) -> None:
        """Write the store to a directory (``.npz`` per array key, one
        ``meta.json``)."""
        root = Path(path)
        root.mkdir(parents=True, exist_ok=True)
        for key, bundle in self._arrays.items():
            np.savez_compressed(root / f"{_encode_key(key)}.npz", **bundle)
        meta = {_encode_key(key): value for key, value in self._meta.items()}
        (root / "meta.json").write_text(json.dumps(meta, indent=2, sort_keys=True))

    @classmethod
    def load_dir(cls, path: str | Path) -> "DataStore":
        """Read a store previously written by :meth:`save_dir`."""
        root = Path(path)
        if not root.is_dir():
            raise DataError(f"{root} is not a directory")
        store = cls()
        for npz_path in sorted(root.glob("*.npz")):
            with np.load(npz_path) as data:
                store._arrays[_decode_key(npz_path.stem)] = {k: data[k] for k in data.files}
        meta_path = root / "meta.json"
        if meta_path.exists():
            raw = json.loads(meta_path.read_text())
            store._meta = {_decode_key(name): value for name, value in raw.items()}
        return store
