"""Simulated clocks: mission time, Martian time, and drifting device clocks.

The ICAres-1 crew lived on *Martian* time — a sol is ~39.6 minutes longer
than an Earth day — and part of the study concerned time perception under
clock shifts.  The badge fleet additionally suffered ordinary crystal
drift, corrected opportunistically against a reference badge
(see :mod:`repro.radio.timesync`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ConfigError
from repro.core.units import DAY

EARTH_DAY_S = DAY
#: Length of a Martian sol in SI seconds.
MARS_SOL_S = 88_775.244


class MissionClock:
    """Converts between absolute mission seconds and (day, in-day offset).

    Day indices are 1-based to match the paper ("on the fourth day ...").
    Absolute time 0.0 is local midnight at the start of day 1.
    """

    def __init__(self, day_length_s: float = EARTH_DAY_S):
        if day_length_s <= 0:
            raise ConfigError("day_length_s must be positive")
        self.day_length_s = float(day_length_s)

    def absolute(self, day: int, seconds_of_day: float = 0.0) -> float:
        """Absolute mission seconds for ``seconds_of_day`` on ``day``."""
        if day < 1:
            raise ConfigError(f"day index must be >= 1, got {day}")
        if not 0.0 <= seconds_of_day < self.day_length_s:
            raise ConfigError(f"seconds_of_day out of range: {seconds_of_day}")
        return (day - 1) * self.day_length_s + seconds_of_day

    def day_of(self, absolute_s: float) -> int:
        """1-based day index containing ``absolute_s``."""
        return int(absolute_s // self.day_length_s) + 1

    def seconds_of_day(self, absolute_s: float) -> float:
        """In-day offset of ``absolute_s``."""
        return absolute_s % self.day_length_s


class MartianClock:
    """Maps terrestrial mission seconds to the habitat's Martian local time.

    The habitat's artificial lighting followed Martian time of day, so
    "local midnight" slips ~39m35s later (in Earth terms) every sol.
    """

    def __init__(self, sol_length_s: float = MARS_SOL_S, epoch_offset_s: float = 0.0):
        if sol_length_s <= 0:
            raise ConfigError("sol_length_s must be positive")
        self.sol_length_s = float(sol_length_s)
        self.epoch_offset_s = float(epoch_offset_s)

    def sol_of(self, absolute_s: float) -> int:
        """1-based sol index for a terrestrial mission timestamp."""
        return int((absolute_s + self.epoch_offset_s) // self.sol_length_s) + 1

    def seconds_of_sol(self, absolute_s: float) -> float:
        """In-sol offset (0 .. sol_length) of a terrestrial timestamp."""
        return (absolute_s + self.epoch_offset_s) % self.sol_length_s

    def daily_shift_s(self) -> float:
        """How much later (in Earth seconds) Martian midnight falls each sol."""
        return self.sol_length_s - EARTH_DAY_S


@dataclass
class ClockModel:
    """A device-local clock with constant frequency error and initial offset.

    ``drift_ppm`` is the crystal's frequency error in parts per million;
    typical cheap crystals are within +/- 20 ppm (~1.7 s/day).
    """

    offset_s: float = 0.0
    drift_ppm: float = 0.0

    def local_time(self, true_time_s: float) -> float:
        """Device-local timestamp for a true mission timestamp."""
        return self.offset_s + true_time_s * (1.0 + self.drift_ppm * 1e-6)

    def true_time(self, local_time_s: float) -> float:
        """Invert :meth:`local_time`."""
        return (local_time_s - self.offset_s) / (1.0 + self.drift_ppm * 1e-6)

    def error_at(self, true_time_s: float) -> float:
        """Absolute clock error (local - true) at a true timestamp."""
        return self.local_time(true_time_s) - true_time_s

    def correct(self, reference_local: float, own_local: float) -> None:
        """Apply a one-shot offset correction from a reference exchange.

        ``reference_local`` is the reference badge's timestamp received in
        an opportunistic sync beacon; ``own_local`` is our local receive
        timestamp.  Propagation delay is negligible at habitat scale, so
        the post-correction offset error is just residual drift.
        """
        self.offset_s -= own_local - reference_local
