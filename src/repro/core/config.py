"""Mission configuration.

A :class:`MissionConfig` fully determines a simulated mission: the same
config (including seed) always reproduces the same traces, sensor data,
figures, and tables.  Defaults reproduce the ICAres-1 mission as
described in the paper; tests shrink ``days`` for speed.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, ClassVar, Optional

from repro.core.errors import ConfigError
from repro.core.units import DAY, HOUR, parse_hhmm

if TYPE_CHECKING:  # imported lazily to keep repro.core free of repro.faults
    from repro.faults.plan import FaultPlan


@dataclass(frozen=True)
class ScriptedEventsConfig:
    """The mission's scripted, atypical events (paper Section III-D).

    Any event whose day falls outside the simulated mission length is
    silently skipped, so short test missions remain valid configs.
    """

    #: Day on which astronaut C leaves the habitat "virtually dead".
    death_day: int = 4
    #: In-day time of C's death.
    death_time: str = "15:00"
    #: Start of the unplanned consolation meeting in the kitchen.
    consolation_time: str = "15:20"
    #: Duration of the consolation meeting, seconds.
    consolation_duration_s: float = 35 * 60.0
    #: Day of the extreme food-shortage announcement (<500 kcal rations).
    famine_day: int = 11
    #: Day on which delayed mission-control instructions contradicted the
    #: crew's action and a reprimand was issued.
    reprimand_day: int = 12
    #: Day on which impaired astronaut A accidentally swaps badges with B.
    badge_swap_day: int = 7
    #: First day on which F wears the badge that had belonged to C.
    badge_reuse_day: int = 9

    def validate(self) -> None:
        """Raise :class:`ConfigError` on inconsistent values."""
        for name in ("death_day", "famine_day", "reprimand_day", "badge_swap_day", "badge_reuse_day"):
            if getattr(self, name) < 1:
                raise ConfigError(f"{name} must be >= 1")
        parse_hhmm(self.death_time)
        parse_hhmm(self.consolation_time)
        if self.consolation_duration_s <= 0:
            raise ConfigError("consolation_duration_s must be positive")
        if parse_hhmm(self.consolation_time) < parse_hhmm(self.death_time):
            raise ConfigError("consolation meeting cannot precede the death event")
        if self.badge_reuse_day <= self.death_day:
            raise ConfigError("badge_reuse_day must come after death_day")


@dataclass(frozen=True)
class ExecutionConfig:
    """How a mission run *executes* — never what it computes.

    Execution knobs (worker count, cache location) are deliberately kept
    out of :class:`MissionConfig`: the mission config fully determines
    the mission's *content*, and the execution config only changes how
    fast that content is produced.  The parallel executor is bit-exact
    with the serial one (see ``repro.exec``), so no execution field may
    ever enter a cache key.

    Attributes:
        n_workers: process-pool size for badge-day work; ``"serial"``
            (or ``1``) runs everything in-process, the historical
            behaviour and the fallback whenever parallel execution is
            not applicable (sensing-fault plans, unpicklable overrides).
            ``"auto"`` picks for the machine: serial when
            ``os.cpu_count() <= 2``, else one worker per core.
        cache_dir: directory of the content-addressed mission cache, or
            ``None`` for no caching.
        cache_enabled: master switch; with ``False`` the cache directory
            is neither read nor written even if configured.
        checkpoint_dir: directory of the crash-recovery checkpoint
            journal, or ``None`` for no checkpointing.  With a journal,
            every completed day is persisted as it finishes, so a killed
            run can be resumed.
        resume: restore completed days from the checkpoint journal
            before executing the remainder (requires ``checkpoint_dir``).
            Resumed runs are bit-identical to uninterrupted ones.
        day_deadline_s: supervisor deadline for one day's worth of work
            in a pool worker; a day that runs longer is treated as hung,
            its worker killed, and the day retried.  ``None`` disables
            hung-worker detection.
        max_day_retries: times the supervisor re-runs one day after a
            timeout or pool breakage before degrading to serial.
        retry_backoff_s: base of the supervisor's exponential retry
            backoff (scaled by seeded jitter).
        pool_failure_limit: consecutive pool failures without progress
            before the supervisor gives up and the remaining days run
            serially.
        supervisor_seed: seed of the supervisor's jitter RNG, so retry
            schedules are reproducible.
    """

    n_workers: int | str = "serial"
    cache_dir: Optional[str] = None
    cache_enabled: bool = True
    checkpoint_dir: Optional[str] = None
    resume: bool = False
    day_deadline_s: Optional[float] = None
    max_day_retries: int = 2
    retry_backoff_s: float = 0.05
    pool_failure_limit: int = 3
    supervisor_seed: int = 0

    def __post_init__(self) -> None:
        if isinstance(self.n_workers, str):
            if self.n_workers not in ("serial", "auto"):
                raise ConfigError(
                    "n_workers must be a positive int, 'serial', or 'auto', "
                    f"got {self.n_workers!r}"
                )
        elif not isinstance(self.n_workers, int) or self.n_workers < 1:
            raise ConfigError(
                "n_workers must be a positive int, 'serial', or 'auto', "
                f"got {self.n_workers!r}"
            )
        if self.cache_dir is not None and not str(self.cache_dir):
            raise ConfigError("cache_dir must be a non-empty path or None")
        if self.checkpoint_dir is not None and not str(self.checkpoint_dir):
            raise ConfigError("checkpoint_dir must be a non-empty path or None")
        if self.resume and self.checkpoint_dir is None:
            raise ConfigError("resume=True requires a checkpoint_dir")
        if self.day_deadline_s is not None and self.day_deadline_s <= 0:
            raise ConfigError("day_deadline_s must be positive or None")
        if self.max_day_retries < 0:
            raise ConfigError("max_day_retries must be >= 0")
        if self.retry_backoff_s < 0:
            raise ConfigError("retry_backoff_s must be >= 0")
        if self.pool_failure_limit < 1:
            raise ConfigError("pool_failure_limit must be >= 1")

    #: ``"auto"`` only: pending missions smaller than this many
    #: frame-badge units run serially even on a many-core box — pool
    #: spin-up (fork + context pickling) costs more than the parallel
    #: win on a mission this small.
    AUTO_POOL_MIN_UNITS: ClassVar[int] = 1_000_000

    @property
    def worker_count(self) -> int:
        """Resolved pool size (``"serial"`` counts as one worker).

        ``"auto"`` sizes the pool to the machine: serial on boxes with
        two or fewer cores (a pool would just add pickling overhead
        there), one worker per core otherwise.  The mission driver
        additionally keeps ``"auto"`` serial for small missions — see
        :meth:`auto_serial`.
        """
        if self.n_workers == "serial":
            return 1
        if self.n_workers == "auto":
            cores = os.cpu_count() or 1
            return 1 if cores <= 2 else cores
        return int(self.n_workers)

    def auto_serial(self, work_units: float) -> bool:
        """Whether ``"auto"`` keeps this much pending work serial.

        ``work_units`` is the remaining frame-badge work of the mission
        (frames per day x badges x days still to compute).  Explicit
        integer pool sizes and ``"serial"`` are never second-guessed —
        only ``"auto"`` weighs the mission against the pool's spin-up
        cost.
        """
        return self.n_workers == "auto" and work_units < self.AUTO_POOL_MIN_UNITS

    @property
    def parallel(self) -> bool:
        """Whether this config requests a process pool."""
        return self.worker_count > 1

    @property
    def cache_active(self) -> bool:
        """Whether a cache should actually be consulted."""
        return self.cache_enabled and self.cache_dir is not None

    @property
    def checkpoint_active(self) -> bool:
        """Whether a checkpoint journal should be written (and read on resume)."""
        return self.checkpoint_dir is not None


@dataclass(frozen=True)
class MissionConfig:
    """Top-level knobs of a simulated ICAres-1-style mission."""

    #: Master RNG seed; all stochastic components derive from it.
    seed: int = 7
    #: Mission length in days (paper: 14, Oct 8 - Oct 22).
    days: int = 14
    #: First day on which badges are worn (paper: day 2).
    badges_from_day: int = 2
    #: Local start of daytime.
    daytime_start: str = "07:00"
    #: Daytime length (paper: 14 h of regulated daytime).
    daytime_hours: float = 14.0
    #: Ground-truth / sensor sampling period in seconds (paper analyses
    #: use 1-second dominant-position frames).
    frame_dt: float = 1.0
    #: Number of deployed BLE beacons (paper: 27).
    n_beacons: int = 27
    #: Crew size (paper: 6, three women and three men).
    crew_size: int = 6
    #: Wear compliance (fraction of daytime the badge is worn) at mission
    #: start and end; the paper reports a decay from ~80% to ~50%.
    wear_compliance_start: float = 0.80
    wear_compliance_end: float = 0.50
    #: One-way Earth-Mars communication delay applied to the mission
    #: control link (paper: 20 minutes).
    earth_link_delay_s: float = 20 * 60.0
    #: Scripted events; ``None`` disables all of them.
    events: Optional[ScriptedEventsConfig] = field(default_factory=ScriptedEventsConfig)
    #: Fault-injection plan; ``None`` runs the mission fault-free.
    fault_plan: Optional["FaultPlan"] = None

    def __post_init__(self) -> None:
        self.validate()

    # -- derived quantities -------------------------------------------

    @property
    def daytime_start_s(self) -> float:
        """Daytime start as seconds of day."""
        return parse_hhmm(self.daytime_start)

    @property
    def daytime_s(self) -> float:
        """Daytime length in seconds."""
        return self.daytime_hours * HOUR

    @property
    def frames_per_day(self) -> int:
        """Number of sample frames in one day's daytime."""
        return int(round(self.daytime_s / self.frame_dt))

    @property
    def instrumented_days(self) -> list[int]:
        """Days on which badge data exists (paper: days 2..14, i.e. 13 days)."""
        return list(range(self.badges_from_day, self.days + 1))

    def event_active(self, day_attr: str) -> bool:
        """Whether the scripted event ``day_attr`` occurs within the mission."""
        if self.events is None:
            return False
        return 1 <= getattr(self.events, day_attr) <= self.days

    def validate(self) -> None:
        """Raise :class:`ConfigError` on inconsistent values."""
        if self.days < 1:
            raise ConfigError("days must be >= 1")
        if not 1 <= self.badges_from_day <= self.days:
            raise ConfigError("badges_from_day must lie within the mission")
        if not 0 < self.daytime_hours <= 24:
            raise ConfigError("daytime_hours must be in (0, 24]")
        if self.frame_dt <= 0:
            raise ConfigError("frame_dt must be positive")
        if abs(self.daytime_s / self.frame_dt - round(self.daytime_s / self.frame_dt)) > 1e-9:
            raise ConfigError("daytime must be an integer number of frames")
        if self.n_beacons < 1:
            raise ConfigError("n_beacons must be >= 1")
        if self.crew_size < 2:
            raise ConfigError("crew_size must be >= 2")
        if not 0.0 <= self.wear_compliance_end <= self.wear_compliance_start <= 1.0:
            raise ConfigError("wear compliance must satisfy 0 <= end <= start <= 1")
        if self.earth_link_delay_s < 0:
            raise ConfigError("earth_link_delay_s must be >= 0")
        parse_hhmm(self.daytime_start)
        if self.daytime_start_s + self.daytime_s > 24 * HOUR:
            raise ConfigError("daytime must end within the same day")
        if self.events is not None:
            self.events.validate()
        if self.fault_plan is not None:
            for event in self.fault_plan.events:
                event.validate()
                if event.time_s >= self.days * DAY:
                    raise ConfigError(
                        f"fault event at t={event.time_s:.0f}s lies beyond the "
                        f"{self.days}-day mission"
                    )

    def with_days(self, days: int) -> "MissionConfig":
        """A copy of this config with a different mission length."""
        return replace(self, days=days)
