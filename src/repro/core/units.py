"""Unit constants and small formatting helpers.

Mission time throughout the library is measured in seconds since local
midnight of a mission day (``float``), or in absolute seconds since the
start of day 1 when a day index is combined with an in-day offset.
"""

from __future__ import annotations

SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0

CM = 0.01
METER = 1.0

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


def hhmm(seconds_of_day: float) -> str:
    """Format an in-day offset as ``HH:MM`` (e.g. ``hhmm(45000) == '12:30'``)."""
    total_minutes = int(seconds_of_day // MINUTE)
    return f"{total_minutes // 60:02d}:{total_minutes % 60:02d}"


def hhmmss(seconds_of_day: float) -> str:
    """Format an in-day offset as ``HH:MM:SS``."""
    s = int(seconds_of_day)
    return f"{s // 3600:02d}:{s % 3600 // 60:02d}:{s % 60:02d}"


def parse_hhmm(text: str) -> float:
    """Parse ``'HH:MM'`` (or ``'HH:MM:SS'``) into seconds of day."""
    parts = text.split(":")
    if len(parts) not in (2, 3):
        raise ValueError(f"expected HH:MM or HH:MM:SS, got {text!r}")
    hours, minutes = int(parts[0]), int(parts[1])
    seconds = int(parts[2]) if len(parts) == 3 else 0
    if not (0 <= minutes < 60 and 0 <= seconds < 60):
        raise ValueError(f"invalid time of day: {text!r}")
    return hours * HOUR + minutes * MINUTE + seconds


def gib(num_bytes: float) -> float:
    """Convert a byte count to GiB."""
    return num_bytes / GIB
