"""Half-open interval sets on the time axis.

Wear compliance, speech episodes, room stays, co-presence, and meetings
are all naturally sets of ``[start, end)`` intervals; this module gives
them one well-tested algebra (union, intersection, difference,
complement, duration, boolean-mask round trips).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.core.errors import DataError


class IntervalSet:
    """An immutable, normalized set of half-open intervals ``[start, end)``.

    Normalization sorts intervals, drops empty ones, and merges any that
    overlap or touch, so two equal sets always have equal representations.
    """

    __slots__ = ("_starts", "_ends")

    def __init__(self, intervals: Iterable[tuple[float, float]] = ()):
        pairs = [(float(s), float(e)) for s, e in intervals]
        for start, end in pairs:
            if end < start:
                raise DataError(f"interval end {end} before start {start}")
        pairs = [(s, e) for s, e in pairs if e > s]
        pairs.sort()
        starts: list[float] = []
        ends: list[float] = []
        for start, end in pairs:
            if starts and start <= ends[-1]:
                ends[-1] = max(ends[-1], end)
            else:
                starts.append(start)
                ends.append(end)
        self._starts = np.asarray(starts, dtype=np.float64)
        self._ends = np.asarray(ends, dtype=np.float64)

    # -- constructors -------------------------------------------------

    @classmethod
    def single(cls, start: float, end: float) -> "IntervalSet":
        """The set containing one interval."""
        return cls([(start, end)])

    @classmethod
    def empty(cls) -> "IntervalSet":
        """The empty set."""
        return cls()

    @classmethod
    def from_mask(cls, mask: np.ndarray, t0: float = 0.0, dt: float = 1.0) -> "IntervalSet":
        """Build from a boolean sample mask on a regular grid.

        Sample ``i`` covers ``[t0 + i*dt, t0 + (i+1)*dt)``.
        """
        mask = np.asarray(mask, dtype=bool)
        if mask.ndim != 1:
            raise DataError("mask must be one-dimensional")
        if not mask.any():
            return cls()
        padded = np.concatenate(([False], mask, [False]))
        edges = np.flatnonzero(padded[1:] != padded[:-1])
        starts = edges[0::2]
        ends = edges[1::2]
        return cls(zip(t0 + starts * dt, t0 + ends * dt))

    # -- queries ------------------------------------------------------

    def __len__(self) -> int:
        return int(self._starts.size)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(zip(self._starts.tolist(), self._ends.tolist()))

    def __bool__(self) -> bool:
        return self._starts.size > 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return np.array_equal(self._starts, other._starts) and np.array_equal(
            self._ends, other._ends
        )

    def __hash__(self) -> int:
        return hash((self._starts.tobytes(), self._ends.tobytes()))

    def __repr__(self) -> str:
        inner = ", ".join(f"[{s:g}, {e:g})" for s, e in self)
        return f"IntervalSet({inner})"

    @property
    def starts(self) -> np.ndarray:
        """Start timestamps (read-only view)."""
        return self._starts

    @property
    def ends(self) -> np.ndarray:
        """End timestamps (read-only view)."""
        return self._ends

    def total(self) -> float:
        """Total covered duration."""
        return float(np.sum(self._ends - self._starts))

    def contains(self, t: float) -> bool:
        """Whether timestamp ``t`` lies inside the set."""
        idx = int(np.searchsorted(self._starts, t, side="right")) - 1
        return idx >= 0 and t < self._ends[idx]

    def span(self) -> tuple[float, float]:
        """(min start, max end); raises on the empty set."""
        if not self:
            raise DataError("span() of an empty IntervalSet")
        return float(self._starts[0]), float(self._ends[-1])

    def to_mask(self, n: int, t0: float = 0.0, dt: float = 1.0) -> np.ndarray:
        """Boolean mask of ``n`` grid samples; sample i true iff its
        midpoint ``t0 + (i + 0.5) * dt`` is covered."""
        mids = t0 + (np.arange(n) + 0.5) * dt
        idx = np.searchsorted(self._starts, mids, side="right") - 1
        mask = idx >= 0
        valid = np.where(mask)[0]
        mask[valid] = mids[valid] < self._ends[idx[valid]]
        return mask

    # -- algebra ------------------------------------------------------

    def union(self, other: "IntervalSet") -> "IntervalSet":
        """Set union."""
        return IntervalSet(list(self) + list(other))

    def intersect(self, other: "IntervalSet") -> "IntervalSet":
        """Set intersection (two-pointer sweep)."""
        out: list[tuple[float, float]] = []
        i = j = 0
        while i < len(self) and j < len(other):
            lo = max(self._starts[i], other._starts[j])
            hi = min(self._ends[i], other._ends[j])
            if lo < hi:
                out.append((float(lo), float(hi)))
            if self._ends[i] <= other._ends[j]:
                i += 1
            else:
                j += 1
        return IntervalSet(out)

    def difference(self, other: "IntervalSet") -> "IntervalSet":
        """Set difference ``self - other``."""
        if not self:
            return IntervalSet()
        lo, hi = self.span()
        return self.intersect(other.complement(lo, hi))

    def complement(self, lo: float, hi: float) -> "IntervalSet":
        """Complement within the window ``[lo, hi)``."""
        if hi < lo:
            raise DataError(f"complement window end {hi} before start {lo}")
        out: list[tuple[float, float]] = []
        cursor = lo
        for start, end in self:
            if end <= lo:
                continue
            if start >= hi:
                break
            if start > cursor:
                out.append((cursor, min(start, hi)))
            cursor = max(cursor, end)
        if cursor < hi:
            out.append((cursor, hi))
        return IntervalSet(out)

    def clip(self, lo: float, hi: float) -> "IntervalSet":
        """Restrict to the window ``[lo, hi)``."""
        return self.intersect(IntervalSet.single(lo, hi))

    def filter_min_duration(self, min_duration: float) -> "IntervalSet":
        """Drop intervals shorter than ``min_duration``.

        This is the primitive behind the paper's 10-second minimum-stay
        rule for room transitions.
        """
        keep = (self._ends - self._starts) >= min_duration
        return IntervalSet(zip(self._starts[keep], self._ends[keep]))

    def shift(self, offset: float) -> "IntervalSet":
        """Translate every interval by ``offset`` seconds."""
        return IntervalSet(zip(self._starts + offset, self._ends + offset))


def union_all(sets: Sequence[IntervalSet]) -> IntervalSet:
    """Union of many interval sets."""
    pairs: list[tuple[float, float]] = []
    for s in sets:
        pairs.extend(s)
    return IntervalSet(pairs)
