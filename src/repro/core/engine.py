"""A minimal discrete-event simulation engine.

The habitat *support system* prototype (:mod:`repro.support`) — message
bus, delayed Earth link, failover, authorization rounds — runs on this
engine.  The crew/sensor trace generation is segment-based and does not
need it, which keeps the hot path vectorizable.

The engine is deliberately small: a time-ordered heap of callbacks with
stable FIFO ordering for simultaneous events, cancellation, and a few
run-control helpers.  No coroutines, no magic.

Bookkeeping: a live-event counter makes :meth:`Simulator.pending` O(1),
and cancelled entries are purged from the heap lazily once they dominate
it.  When :mod:`repro.obs` telemetry is enabled the loop also records
per-callback counts/latencies and a queue-depth gauge; disabled, the
instrumentation is a single boolean read per event.
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import Any, Callable, Optional

from repro.core.errors import SimulationError
from repro.obs import _state as _obs
from repro.obs import metrics as _metrics

#: Purge cancelled heap entries once they outnumber live ones (and the
#: heap is big enough for the O(n) rebuild to be worth amortizing).
_PURGE_MIN = 64


class Event:
    """A scheduled callback; returned by :meth:`Simulator.schedule`.

    Events are compared by (time, sequence-number) so simultaneous events
    fire in scheduling order.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_sim")

    def __init__(self, time: float, seq: int, callback: Callable[..., Any],
                 args: tuple, sim: Optional["Simulator"] = None):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._on_cancel()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.3f} {name}{state}>"


class Simulator:
    """Time-ordered event loop.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, fired.append, "a")
    >>> _ = sim.schedule(3.0, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._running = False
        self._live = 0            # non-cancelled events in the heap
        self._cancelled = 0       # cancelled events still in the heap
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(f"cannot schedule at {time} < now {self._now}")
        event = Event(time, next(self._seq), callback, args, sim=self)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def _on_cancel(self) -> None:
        """Bookkeeping for :meth:`Event.cancel`; may trigger a lazy purge."""
        self._live -= 1
        self._cancelled += 1
        if self._cancelled > _PURGE_MIN and self._cancelled > self._live:
            self._purge()

    def _purge(self) -> None:
        """Drop every cancelled entry and re-heapify the survivors."""
        self._heap = [e for e in self._heap if not e.cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self._cancelled -= 1
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Fire the next event.  Returns False when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                self._cancelled -= 1
                continue
            self._live -= 1
            event._sim = None  # fired: a late cancel() is a pure flag set
            self._now = event.time
            if _obs.enabled:
                self._instrumented_fire(event)
            else:
                event.callback(*event.args)
            self.events_processed += 1
            return True
        return False

    def _instrumented_fire(self, event: Event) -> None:
        """Telemetry-enabled event dispatch (cold path)."""
        qualname = getattr(event.callback, "__qualname__", repr(event.callback))
        t0 = time.perf_counter()
        try:
            event.callback(*event.args)
        finally:
            elapsed = time.perf_counter() - t0
            _metrics.counter(
                "engine.events", "events fired, by callback qualname"
            ).inc(callback=qualname)
            _metrics.histogram(
                "engine.callback_wall_s", "wall-clock seconds per callback"
            ).observe(elapsed, callback=qualname)
            _metrics.gauge(
                "engine.queue_depth", "live events still queued"
            ).set(self._live)

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until the queue drains (or ``max_events`` fire)."""
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        try:
            fired = 0
            while self.step():
                fired += 1
                if max_events is not None and fired >= max_events:
                    return
        finally:
            self._running = False

    def run_until(self, time: float) -> None:
        """Run all events with timestamp <= ``time``; advance clock to ``time``."""
        if time < self._now:
            raise SimulationError(f"cannot run backwards to {time} < now {self._now}")
        while True:
            upcoming = self.peek()
            if upcoming is None or upcoming > time:
                break
            self.step()
        self._now = max(self._now, time)

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1)."""
        return self._live
