"""A minimal discrete-event simulation engine.

The habitat *support system* prototype (:mod:`repro.support`) — message
bus, delayed Earth link, failover, authorization rounds — runs on this
engine.  The crew/sensor trace generation is segment-based and does not
need it, which keeps the hot path vectorizable.

The engine is deliberately small: a time-ordered heap of callbacks with
stable FIFO ordering for simultaneous events, cancellation, and a few
run-control helpers.  No coroutines, no magic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from repro.core.errors import SimulationError


class Event:
    """A scheduled callback; returned by :meth:`Simulator.schedule`.

    Events are compared by (time, sequence-number) so simultaneous events
    fire in scheduling order.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.3f} {name}{state}>"


class Simulator:
    """Time-ordered event loop.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, fired.append, "a")
    >>> _ = sim.schedule(3.0, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._running = False
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(f"cannot schedule at {time} < now {self._now}")
        event = Event(time, next(self._seq), callback, args)
        heapq.heappush(self._heap, event)
        return event

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Fire the next event.  Returns False when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback(*event.args)
            self.events_processed += 1
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until the queue drains (or ``max_events`` fire)."""
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        try:
            fired = 0
            while self.step():
                fired += 1
                if max_events is not None and fired >= max_events:
                    return
        finally:
            self._running = False

    def run_until(self, time: float) -> None:
        """Run all events with timestamp <= ``time``; advance clock to ``time``."""
        if time < self._now:
            raise SimulationError(f"cannot run backwards to {time} < now {self._now}")
        while True:
            upcoming = self.peek()
            if upcoming is None or upcoming > time:
                break
            self.step()
        self._now = max(self._now, time)

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for e in self._heap if not e.cancelled)
