"""Per-room environmental fields: temperature, light, pressure, noise.

The badges carry a thermometer, barometer, and light sensor; the paper
notes the kitchen was "the cosiest room with the highest temperatures".
Lighting is entirely artificial and follows the habitat's Martian time
of day.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.clock import MartianClock
from repro.core.errors import ConfigError

#: Standard sea-level-ish habitat pressure (hPa).
BASE_PRESSURE_HPA = 1005.0


@dataclass(frozen=True)
class RoomClimate:
    """Static climate parameters of one room."""

    temperature_c: float
    light_lux_day: float
    noise_floor_db: float

    def __post_init__(self) -> None:
        if self.light_lux_day < 0 or self.noise_floor_db < 0:
            raise ConfigError("light and noise levels must be non-negative")


#: Default per-room climates; kitchen warmest, storage coolest.
DEFAULT_CLIMATES: dict[str, RoomClimate] = {
    "airlock": RoomClimate(temperature_c=18.5, light_lux_day=220.0, noise_floor_db=38.0),
    "bedroom": RoomClimate(temperature_c=20.5, light_lux_day=140.0, noise_floor_db=30.0),
    "biolab": RoomClimate(temperature_c=21.0, light_lux_day=420.0, noise_floor_db=42.0),
    "kitchen": RoomClimate(temperature_c=23.5, light_lux_day=320.0, noise_floor_db=44.0),
    "office": RoomClimate(temperature_c=21.5, light_lux_day=380.0, noise_floor_db=40.0),
    "restroom": RoomClimate(temperature_c=21.0, light_lux_day=200.0, noise_floor_db=36.0),
    "storage": RoomClimate(temperature_c=17.5, light_lux_day=160.0, noise_floor_db=34.0),
    "workshop": RoomClimate(temperature_c=20.0, light_lux_day=400.0, noise_floor_db=46.0),
    "main": RoomClimate(temperature_c=22.0, light_lux_day=260.0, noise_floor_db=40.0),
}


class Environment:
    """Time-varying environmental readings per room.

    Temperature wanders slowly around the room setpoint; lights dim to a
    night level outside the Martian-time day window; pressure drifts with
    life-support cycling.
    """

    def __init__(
        self,
        climates: dict[str, RoomClimate] | None = None,
        martian_clock: MartianClock | None = None,
        night_light_lux: float = 5.0,
        day_window: tuple[float, float] = (0.25, 0.85),
    ):
        self.climates = dict(DEFAULT_CLIMATES if climates is None else climates)
        self.clock = martian_clock if martian_clock is not None else MartianClock()
        self.night_light_lux = float(night_light_lux)
        lo, hi = day_window
        if not 0.0 <= lo < hi <= 1.0:
            raise ConfigError("day_window must satisfy 0 <= lo < hi <= 1")
        self.day_window = (float(lo), float(hi))

    def climate(self, room: str) -> RoomClimate:
        """Climate parameters of ``room``."""
        try:
            return self.climates[room]
        except KeyError:
            raise ConfigError(f"no climate defined for room {room!r}") from None

    def temperature_c(self, room: str, t_abs: np.ndarray) -> np.ndarray:
        """Temperature trace for a room at absolute mission times."""
        base = self.climate(room).temperature_c
        t_abs = np.asarray(t_abs, dtype=np.float64)
        # Slow diurnal wobble (HVAC cycling), +/- 0.6 C.
        phase = 2.0 * np.pi * self.clock.seconds_of_sol(t_abs) / self.clock.sol_length_s
        return base + 0.6 * np.sin(phase)

    def is_martian_day(self, t_abs: np.ndarray) -> np.ndarray:
        """Boolean mask: lights at day level per Martian time of sol."""
        t_abs = np.asarray(t_abs, dtype=np.float64)
        frac = self.clock.seconds_of_sol(t_abs) / self.clock.sol_length_s
        lo, hi = self.day_window
        return (frac >= lo) & (frac < hi)

    def light_lux(self, room: str, t_abs: np.ndarray) -> np.ndarray:
        """Illuminance trace for a room at absolute mission times."""
        day_level = self.climate(room).light_lux_day
        day = self.is_martian_day(t_abs)
        return np.where(day, day_level, self.night_light_lux)

    def pressure_hpa(self, t_abs: np.ndarray) -> np.ndarray:
        """Habitat pressure trace (uniform across rooms)."""
        t_abs = np.asarray(t_abs, dtype=np.float64)
        return BASE_PRESSURE_HPA + 1.5 * np.sin(2.0 * np.pi * t_abs / 7200.0)

    def noise_floor_db(self, room: str) -> float:
        """Ambient (non-speech) noise floor of a room."""
        return self.climate(room).noise_floor_db
