"""Habitat substrate: the Lunares-like analog habitat.

Geometry primitives, rooms, the floor plan, walls/doors with RF
attenuation, per-room environmental fields, and BLE beacon placement.
"""

from repro.habitat.beacons import Beacon, place_beacons
from repro.habitat.environment import Environment, RoomClimate
from repro.habitat.floorplan import FloorPlan, lunares_floorplan
from repro.habitat.geometry import Point, Rect, distance
from repro.habitat.rooms import MAIN_HALL, ROOM_NAMES, Room
from repro.habitat.walls import WallModel

__all__ = [
    "Beacon",
    "Environment",
    "FloorPlan",
    "MAIN_HALL",
    "Point",
    "Rect",
    "Room",
    "ROOM_NAMES",
    "RoomClimate",
    "WallModel",
    "distance",
    "lunares_floorplan",
    "place_beacons",
]
