"""Planar geometry primitives used by the habitat model.

The habitat is modeled in a 2-D metric coordinate system (meters).
Rooms are axis-aligned rectangles, which is sufficient for everything
the sensing pipeline observes (containment, distances, door proximity).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.core.errors import ConfigError

#: A point is an (x, y) pair in meters.
Point = tuple[float, float]


def distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


def distances_to(points_xy: np.ndarray, target: Point) -> np.ndarray:
    """Euclidean distances from an ``(n, 2)`` array of points to ``target``."""
    points_xy = np.asarray(points_xy, dtype=np.float64)
    return np.hypot(points_xy[:, 0] - target[0], points_xy[:, 1] - target[1])


@dataclass(frozen=True)
class Rect:
    """A closed axis-aligned rectangle ``[x0, x1] x [y0, y1]``."""

    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self) -> None:
        if self.x1 < self.x0 or self.y1 < self.y0:
            raise ConfigError(f"degenerate rectangle {self}")

    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        return self.y1 - self.y0

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return ((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)

    def contains(self, p: Point) -> bool:
        """Whether ``p`` lies inside the rectangle (boundary inclusive)."""
        return self.x0 <= p[0] <= self.x1 and self.y0 <= p[1] <= self.y1

    def contains_many(self, points_xy: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`contains` over an ``(n, 2)`` array."""
        points_xy = np.asarray(points_xy)
        x, y = points_xy[:, 0], points_xy[:, 1]
        return (self.x0 <= x) & (x <= self.x1) & (self.y0 <= y) & (y <= self.y1)

    def clamp(self, p: Point) -> Point:
        """The nearest point of the rectangle to ``p``."""
        return (min(max(p[0], self.x0), self.x1), min(max(p[1], self.y0), self.y1))

    def shrink(self, margin: float) -> "Rect":
        """The rectangle with ``margin`` removed from every side.

        Collapses toward the center rather than inverting when the margin
        exceeds half the extent.
        """
        half_w, half_h = self.width / 2.0, self.height / 2.0
        mx = min(margin, half_w)
        my = min(margin, half_h)
        return Rect(self.x0 + mx, self.y0 + my, self.x1 - mx, self.y1 - my)

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Uniformly sample ``n`` points inside the rectangle, ``(n, 2)``."""
        xs = rng.uniform(self.x0, self.x1, size=n)
        ys = rng.uniform(self.y0, self.y1, size=n)
        return np.column_stack([xs, ys])

    def overlaps(self, other: "Rect") -> bool:
        """Whether two rectangles share interior area."""
        return (
            self.x0 < other.x1
            and other.x0 < self.x1
            and self.y0 < other.y1
            and other.y0 < self.y1
        )

    def touches(self, other: "Rect") -> bool:
        """Whether two rectangles share at least an edge segment (or overlap)."""
        return (
            self.x0 <= other.x1
            and other.x0 <= self.x1
            and self.y0 <= other.y1
            and other.y0 <= self.y1
        )


def bounding_box(rects: Iterable[Rect]) -> Rect:
    """The smallest rectangle containing all of ``rects``."""
    rects = list(rects)
    if not rects:
        raise ConfigError("bounding_box of no rectangles")
    return Rect(
        min(r.x0 for r in rects),
        min(r.y0 for r in rects),
        max(r.x1 for r in rects),
        max(r.y1 for r in rects),
    )


def segment_points(a: Point, b: Point, step: float) -> np.ndarray:
    """Points along segment a->b spaced ``step`` apart (including both ends).

    Used to rasterize walking trajectories at the frame rate.
    """
    if step <= 0:
        raise ConfigError("step must be positive")
    length = distance(a, b)
    n = max(2, int(math.ceil(length / step)) + 1)
    ts = np.linspace(0.0, 1.0, n)
    xs = a[0] + (b[0] - a[0]) * ts
    ys = a[1] + (b[1] - a[1]) * ts
    return np.column_stack([xs, ys])
