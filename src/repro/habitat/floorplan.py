"""The Lunares-like floor plan.

Lunares arranges its rooms "in a semicircle with a place to rest in the
middle"; we model the topology that the sensing pipeline actually
observes — every peripheral room opens onto the central main hall, metal
walls separate rooms, the only exit leads through the airlock into the
EVA hangar — using a flattened rectangular arrangement.  Geometry is in
meters.

Layout (not to scale)::

    bedroom | biolab | kitchen | office
    ----------- main hall --------------
    workshop| storage| restroom| airlock --> hangar (EVA)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import ConfigError
from repro.habitat.geometry import Point, Rect, bounding_box
from repro.habitat.rooms import MAIN_HALL, NO_BADGE_ROOMS, ROOM_NAMES, Door, Room

#: Integer room code for "not in the habitat" (EVA hangar / absent).
OUTSIDE = -1


@dataclass(frozen=True)
class FloorPlan:
    """An immutable habitat layout with integer-coded rooms.

    Room indices: ``0 .. 7`` are :data:`~repro.habitat.rooms.ROOM_NAMES`
    in order, index ``8`` is the main hall, :data:`OUTSIDE` (-1) is
    outside the pressurized volume.
    """

    rooms: tuple[Room, ...]
    hangar: Rect

    def __post_init__(self) -> None:
        names = [room.name for room in self.rooms]
        if len(set(names)) != len(names):
            raise ConfigError("duplicate room names in floor plan")
        if MAIN_HALL not in names:
            raise ConfigError("floor plan must include the main hall")
        for i, room in enumerate(self.rooms):
            if room.index != i:
                raise ConfigError(f"room {room.name!r} has index {room.index}, expected {i}")

    # -- lookup ---------------------------------------------------------

    @property
    def n_rooms(self) -> int:
        return len(self.rooms)

    @property
    def main_index(self) -> int:
        return self.index_of(MAIN_HALL)

    def room(self, name: str) -> Room:
        """Room by name."""
        for room in self.rooms:
            if room.name == name:
                return room
        raise ConfigError(f"no room named {name!r}")

    def index_of(self, name: str) -> int:
        """Integer code of a room name."""
        return self.room(name).index

    def name_of(self, index: int) -> str:
        """Room name for an integer code (``OUTSIDE`` -> ``'outside'``)."""
        if index == OUTSIDE:
            return "outside"
        return self.rooms[index].name

    @property
    def bounds(self) -> Rect:
        """Bounding box of the pressurized volume."""
        return bounding_box(room.rect for room in self.rooms)

    # -- point location ---------------------------------------------------

    def locate(self, p: Point) -> int:
        """Room index containing point ``p`` (peripheral rooms win over
        the hall on shared boundaries); ``OUTSIDE`` if nowhere."""
        hit = OUTSIDE
        for room in self.rooms:
            if room.rect.contains(p):
                if room.name != MAIN_HALL:
                    return room.index
                hit = room.index
        return hit

    def locate_many(self, points_xy: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`locate` over an ``(n, 2)`` array."""
        points_xy = np.asarray(points_xy)
        out = np.full(points_xy.shape[0], OUTSIDE, dtype=np.int8)
        main_idx = self.main_index
        # Hall first so peripheral rooms overwrite shared boundaries.
        out[self.rooms[main_idx].rect.contains_many(points_xy)] = main_idx
        for room in self.rooms:
            if room.index == main_idx:
                continue
            out[room.rect.contains_many(points_xy)] = room.index
        nan_rows = np.isnan(points_xy).any(axis=1)
        out[nan_rows] = OUTSIDE
        return out

    # -- topology ---------------------------------------------------------

    def wall_matrix(self) -> np.ndarray:
        """``(n, n)`` matrix of wall counts separating room pairs.

        0 within a room, 1 across a door-connected pair, 2 otherwise.
        The habitat's metal walls make each crossing strongly attenuating,
        which is why the paper reports perfect room detection.
        """
        n = self.n_rooms
        walls = np.full((n, n), 2, dtype=np.int8)
        np.fill_diagonal(walls, 0)
        for room in self.rooms:
            for door in room.doors:
                a, b = (self.index_of(name) for name in door.connects)
                walls[a, b] = walls[b, a] = 1
        return walls

    def door_between(self, a: str, b: str) -> Door:
        """The door connecting rooms ``a`` and ``b``."""
        return self.room(a).door_to(b)

    def path(self, origin: str, target: str, origin_point: Point, target_point: Point) -> list[Point]:
        """Walking waypoints from a point in ``origin`` to one in ``target``.

        All peripheral rooms connect through the main hall, so paths are
        at most origin -> own door -> target's door -> target point.
        """
        if origin == target:
            return [origin_point, target_point]
        hall_inner = self.room(MAIN_HALL).rect.shrink(0.4)
        waypoints: list[Point] = [origin_point]
        if origin != MAIN_HALL:
            door = self.door_between(origin, MAIN_HALL).position
            waypoints.append(door)
            # Step off the shared wall into the hall proper, so the
            # corridor leg is unambiguously classified as the hall.
            waypoints.append(hall_inner.clamp(door))
        if target != MAIN_HALL:
            door = self.door_between(target, MAIN_HALL).position
            waypoints.append(hall_inner.clamp(door))
            waypoints.append(door)
        waypoints.append(target_point)
        return waypoints


def lunares_floorplan(room_w: float = 4.0, room_d: float = 3.0, hall_d: float = 4.0) -> FloorPlan:
    """Build the default Lunares-like floor plan.

    ``room_w`` x ``room_d`` peripheral rooms in two rows of four around a
    central hall of depth ``hall_d``; the hangar extends past the airlock.
    """
    if min(room_w, room_d, hall_d) <= 0:
        raise ConfigError("floor plan dimensions must be positive")
    top = ("bedroom", "biolab", "kitchen", "office")
    bottom = ("workshop", "storage", "restroom", "airlock")
    width = room_w * 4

    def door(x: float, y: float, other: str) -> Door:
        return Door(position=(x, y), connects=(other, MAIN_HALL))

    rooms: dict[str, Room] = {}
    for col, name in enumerate(top):
        rect = Rect(col * room_w, hall_d, (col + 1) * room_w, hall_d + room_d)
        doors = (door(col * room_w + room_w / 2, hall_d, name),)
        rooms[name] = Room(name=name, rect=rect, doors=doors,
                           badge_prohibited=name in NO_BADGE_ROOMS)
    for col, name in enumerate(bottom):
        rect = Rect(col * room_w, -room_d, (col + 1) * room_w, 0.0)
        doors = (door(col * room_w + room_w / 2, 0.0, name),)
        rooms[name] = Room(name=name, rect=rect, doors=doors,
                           badge_prohibited=name in NO_BADGE_ROOMS)
    hall_doors = tuple(room.doors[0] for room in rooms.values())
    rooms[MAIN_HALL] = Room(name=MAIN_HALL, rect=Rect(0.0, 0.0, width, hall_d), doors=hall_doors)

    ordered = [rooms[name] for name in ROOM_NAMES] + [rooms[MAIN_HALL]]
    indexed = tuple(
        Room(name=r.name, rect=r.rect, doors=r.doors, badge_prohibited=r.badge_prohibited, index=i)
        for i, r in enumerate(ordered)
    )
    hangar = Rect(width, -room_d, width + 10.0, 0.0)
    return FloorPlan(rooms=indexed, hangar=hangar)
