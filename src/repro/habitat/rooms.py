"""Rooms of the habitat.

The room set matches the paper's Figure 2 axis — airlock, bedroom,
biolab, kitchen, office, restroom, storage, workshop — plus the central
main hall ("a place to rest in the middle"), which Figure 2 excludes
from the transition matrix because it is adjacent to everything.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import ConfigError
from repro.habitat.geometry import Point, Rect

#: Name of the central hall every other room connects to.
MAIN_HALL = "main"

#: Peripheral rooms, in the (alphabetical) order used by the paper's Fig. 2.
ROOM_NAMES = (
    "airlock",
    "bedroom",
    "biolab",
    "kitchen",
    "office",
    "restroom",
    "storage",
    "workshop",
)

#: Rooms in which wearing a badge was prohibited or infeasible.
NO_BADGE_ROOMS = frozenset({"restroom"})


@dataclass(frozen=True)
class Door:
    """A doorway in a room's wall, located at ``position``.

    ``leak_radius_m`` is how close a receiver must be for signals from
    the adjacent room to leak through the opening at reduced attenuation
    — the phenomenon the paper's 10-second stay filter compensates for.
    """

    position: Point
    connects: tuple[str, str]
    leak_radius_m: float = 1.8


@dataclass(frozen=True)
class Room:
    """One room of the habitat."""

    name: str
    rect: Rect
    #: Doors leading out of this room.
    doors: tuple[Door, ...] = field(default_factory=tuple)
    #: Whether badge wearing is prohibited here (privacy rules).
    badge_prohibited: bool = False
    #: Index used in integer-coded room arrays (assigned by the floor plan).
    index: int = -1

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("room name must be non-empty")

    @property
    def center(self) -> Point:
        return self.rect.center

    def door_to(self, other: str) -> Door:
        """The door connecting this room to ``other``."""
        for door in self.doors:
            if other in door.connects:
                return door
        raise ConfigError(f"no door between {self.name!r} and {other!r}")

    def connects_to(self, other: str) -> bool:
        """Whether a door directly connects this room to ``other``."""
        return any(other in door.connects for door in self.doors)
