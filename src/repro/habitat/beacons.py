"""BLE beacon deployment.

The paper deployed 27 beacons, each broadcasting ~3 times per second;
"because of the construction of the habitat and the carefully selected
placement of the beacons", room detection was perfect.  The default
placement spreads three beacons per room (including the hall), avoiding
doorways, which is what makes strongest-beacon room detection reliable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import ConfigError
from repro.habitat.floorplan import FloorPlan
from repro.habitat.geometry import Point


@dataclass(frozen=True)
class Beacon:
    """One deployed BLE beacon."""

    beacon_id: int
    position: Point
    room: int
    #: Transmit power at 1 m, dBm (typical BLE beacon setting).
    tx_power_dbm: float = -59.0
    #: Mean advertising interval, seconds (~3 broadcasts per second).
    advertising_interval_s: float = 1.0 / 3.0

    def __post_init__(self) -> None:
        if self.advertising_interval_s <= 0:
            raise ConfigError("advertising interval must be positive")


def place_beacons(plan: FloorPlan, n_beacons: int = 27, margin_m: float = 0.7) -> list[Beacon]:
    """Deterministically place ``n_beacons`` around the habitat.

    Beacons are assigned to rooms round-robin (largest rooms first, so
    the hall gets extras) and positioned at fixed interior anchors away
    from walls and doorways.  Placement is deterministic — in the real
    deployment positions were surveyed by hand, and the localization
    pipeline relies on knowing them exactly.
    """
    if n_beacons < 1:
        raise ConfigError("n_beacons must be >= 1")
    rooms = sorted(plan.rooms, key=lambda r: -r.rect.area)
    # Interior anchor pattern: corners-in-from-margin plus center.
    anchor_fracs = [(0.5, 0.5), (0.2, 0.3), (0.8, 0.7), (0.2, 0.7), (0.8, 0.3)]
    beacons: list[Beacon] = []
    slot = 0
    while len(beacons) < n_beacons:
        room = rooms[slot % len(rooms)]
        anchor_idx = slot // len(rooms)
        fx, fy = anchor_fracs[anchor_idx % len(anchor_fracs)]
        inner = room.rect.shrink(margin_m)
        position = (inner.x0 + fx * inner.width, inner.y0 + fy * inner.height)
        beacons.append(Beacon(beacon_id=len(beacons), position=position, room=room.index))
        slot += 1
    return beacons


def beacon_positions(beacons: list[Beacon]) -> np.ndarray:
    """``(n, 2)`` array of beacon coordinates."""
    return np.asarray([b.position for b in beacons], dtype=np.float64)


def beacon_rooms(beacons: list[Beacon]) -> np.ndarray:
    """``(n,)`` array of beacon room indices."""
    return np.asarray([b.room for b in beacons], dtype=np.int8)


def rooms_covered(beacons: list[Beacon], plan: FloorPlan) -> set[str]:
    """Names of rooms that contain at least one beacon."""
    return {plan.name_of(int(b.room)) for b in beacons}
