"""RF attenuation through the habitat's walls and doorways.

Lunares' rooms have metal walls that "perfectly shielded the signal from
the beacons in the other rooms", with occasional leakage through open
doors that the paper filters with a 10-second minimum stay.  The wall
model reproduces both effects: a strong per-wall penalty, and a reduced
penalty when the receiver stands near the connecting doorway.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import ConfigError
from repro.habitat.floorplan import OUTSIDE, FloorPlan
from repro.habitat.geometry import Point
from repro.habitat.rooms import MAIN_HALL


@dataclass(frozen=True)
class WallModel:
    """Extra path loss (dB) contributed by walls between rooms.

    Attributes:
        wall_db: penalty per wall crossed (metal walls are very lossy).
        door_leak_db: reduction of the penalty when the receiver stands
            within the doorway's leak radius of a directly connecting
            door — the source of transient wrong-room beacon hits.
        outside_db: penalty for links crossing the pressure hull (badges
            are not worn during EVAs, but the model stays defined).
    """

    wall_db: float = 35.0
    door_leak_db: float = 29.0
    outside_db: float = 120.0

    def __post_init__(self) -> None:
        if self.wall_db < 0 or self.door_leak_db < 0 or self.outside_db < 0:
            raise ConfigError("attenuations must be non-negative")
        if self.door_leak_db > self.wall_db:
            raise ConfigError("door_leak_db cannot exceed wall_db")

    def attenuation_db(
        self,
        plan: FloorPlan,
        rx_xy: np.ndarray,
        rx_room: np.ndarray,
        tx_point: Point,
        tx_room: int,
    ) -> np.ndarray:
        """Wall attenuation for many receivers against one transmitter.

        Args:
            plan: the floor plan (supplies topology and door positions).
            rx_xy: ``(n, 2)`` receiver positions.
            rx_room: ``(n,)`` receiver room indices (``OUTSIDE`` allowed).
            tx_point: transmitter position.
            tx_room: transmitter room index.

        Returns:
            ``(n,)`` attenuation in dB.
        """
        rx_xy = np.asarray(rx_xy, dtype=np.float64)
        rx_room = np.asarray(rx_room)
        walls = plan.wall_matrix()
        out = np.empty(rx_room.shape[0], dtype=np.float64)

        outside = rx_room == OUTSIDE
        inside = ~outside
        out[outside] = self.outside_db
        if tx_room == OUTSIDE:
            out[:] = self.outside_db
            return out

        n_walls = walls[rx_room[inside], tx_room].astype(np.float64)
        atten = n_walls * self.wall_db

        # Door leakage: a receiver near the doorway that directly connects
        # its room to the transmitter's room hears through the opening.
        tx_room_obj = plan.rooms[tx_room]
        for door in tx_room_obj.doors:
            a, b = (plan.index_of(name) for name in door.connects)
            other = b if a == tx_room else a
            near = self._near_door(rx_xy[inside], door.position, door.leak_radius_m)
            leaky = near & (rx_room[inside] == other)
            atten[leaky] = np.maximum(atten[leaky] - self.door_leak_db, 0.0)
        # Second-hand leakage through the hall: a receiver in the hall near
        # some other peripheral room's door still has 1 wall to that room;
        # handled above since hall connects to every room.  Receivers in a
        # peripheral room near their own hall door hear hall transmitters:
        if tx_room == plan.main_index:
            pass  # covered by the loop (the hall holds all doors)
        out[inside] = atten
        return out

    def attenuation_db_matrix(
        self,
        plan: FloorPlan,
        rx_xy: np.ndarray,
        rx_room: np.ndarray,
        tx_rooms: np.ndarray,
    ) -> np.ndarray:
        """Wall attenuation for many receivers against many transmitters.

        The fleet-batched counterpart of :meth:`attenuation_db`: one call
        covers every (receiver frame, transmitter) combination, with the
        door-leak correction applied per doorway instead of per
        transmitter.

        Args:
            plan: the floor plan (supplies topology and door positions).
            rx_xy: ``(n, 2)`` receiver positions.
            rx_room: ``(n,)`` receiver room indices (``OUTSIDE`` allowed).
            tx_rooms: ``(k,)`` transmitter room indices.

        Returns:
            ``(n, k)`` attenuation in dB.
        """
        rx_xy = np.asarray(rx_xy, dtype=np.float64)
        rx_room = np.asarray(rx_room, dtype=np.int64)
        tx_rooms = np.asarray(tx_rooms, dtype=np.int64)
        walls = plan.wall_matrix()

        n_walls = walls[np.maximum(rx_room, 0)[:, None], np.maximum(tx_rooms, 0)[None, :]]
        out = n_walls.astype(np.float64) * self.wall_db

        # Door leakage, per doorway: receivers near the door that directly
        # connects rooms (a, b) hear a-room transmitters from b and vice
        # versa through the opening.
        for room in plan.rooms:
            for door in room.doors:
                a, b = (plan.index_of(name) for name in door.connects)
                if room.index not in (a, b):
                    continue
                other = b if a == room.index else a
                cols = np.flatnonzero(tx_rooms == room.index)
                if cols.size == 0:
                    continue
                near = self._near_door(rx_xy, door.position, door.leak_radius_m)
                rows = np.flatnonzero(near & (rx_room == other))
                if rows.size == 0:
                    continue
                region = np.ix_(rows, cols)
                out[region] = np.maximum(out[region] - self.door_leak_db, 0.0)

        out[rx_room == OUTSIDE, :] = self.outside_db
        out[:, tx_rooms == OUTSIDE] = self.outside_db
        return out

    @staticmethod
    def _near_door(points: np.ndarray, door_pos: Point, radius: float) -> np.ndarray:
        dx = points[:, 0] - door_pos[0]
        dy = points[:, 1] - door_pos[1]
        return dx * dx + dy * dy <= radius * radius

    def wall_count_point(self, plan: FloorPlan, a: Point, b: Point) -> int:
        """Wall count between two points (non-vectorized convenience)."""
        ra, rb = plan.locate(a), plan.locate(b)
        if OUTSIDE in (ra, rb):
            return 3
        return int(plan.wall_matrix()[ra, rb])


def hall_crossing_rooms(plan: FloorPlan) -> list[str]:
    """Names of rooms reachable from the hall through one door (all of them)."""
    return [room.name for room in plan.rooms if room.name != MAIN_HALL]
