"""Command-line interface: ``python -m repro <command>``.

Commands:
    run        simulate a mission and print Table I + deployment stats
    figures    simulate and print every figure's data
    save       simulate and persist the sensing dataset to a directory
    analyze    re-run all analyses on a previously saved dataset
    telemetry  run a short instrumented mission, print the telemetry report
    faults     run a faulted mission under seeded chaos campaign(s)
    quality    run a data-corruption campaign and print the quality report
    reliability  analytic CTMC model: predict, validate, worst-case search
    serve      run the durable mission fleet service on a service directory
    submit     queue a mission submission with the fleet service
    status     show a job's registry record, or the whole fleet overview
    result     print the stored result payload of a completed job
    drain      run the fleet service until the registry holds no work
"""

from __future__ import annotations

import argparse
import sys

from repro import (
    ExecutionConfig,
    MissionConfig,
    build_deployment_stats,
    build_section5_claims,
    build_table1,
    run_mission,
)


def _add_mission_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--days", type=int, default=14,
                        help="mission length in days (default: the paper's 14)")
    parser.add_argument("--seed", type=int, default=7, help="master RNG seed")
    parser.add_argument("--no-events", action="store_true",
                        help="disable the scripted mission events")
    parser.add_argument("--workers", default="serial", metavar="N",
                        help="badge-day workers: an integer, 'serial' "
                             "(default), or 'auto' (serial on <=2 cores, "
                             "one worker per core otherwise; results are "
                             "identical either way)")
    parser.add_argument("--cache", default=None, metavar="DIR",
                        help="content-addressed result cache directory "
                             "(reruns with an unchanged config load from it)")
    parser.add_argument("--checkpoint", default=None, metavar="DIR",
                        help="crash-recovery checkpoint journal directory: "
                             "each completed day is persisted as it finishes")
    parser.add_argument("--resume", action="store_true",
                        help="restore completed days from the checkpoint "
                             "journal and execute only the remainder "
                             "(requires --checkpoint; bit-identical to an "
                             "uninterrupted run)")
    parser.add_argument("--quality", default="auto",
                        choices=("auto", "off", "gate", "strict"),
                        help="validating ingest gate: 'auto' (default) gates "
                             "only when the fault plan corrupts data, 'gate' "
                             "always, 'strict' raises on quarantines, 'off' "
                             "never")


def _config(args: argparse.Namespace) -> MissionConfig:
    kwargs = {"days": args.days, "seed": args.seed}
    if args.no_events:
        kwargs["events"] = None
    return MissionConfig(**kwargs)


def _execution(args: argparse.Namespace) -> ExecutionConfig:
    workers = args.workers if args.workers in ("serial", "auto") else int(args.workers)
    return ExecutionConfig(n_workers=workers, cache_dir=args.cache,
                           checkpoint_dir=args.checkpoint, resume=args.resume)


def cmd_run(args: argparse.Namespace) -> int:
    result = run_mission(_config(args), execution=_execution(args),
                         quality=args.quality)
    checkpoint = (result.cache_stats or {}).get("checkpoint")
    if checkpoint is not None and checkpoint["resumed_days"]:
        days = ", ".join(str(d) for d in checkpoint["resumed_days"])
        print(f"resumed {len(checkpoint['resumed_days'])} day(s) from "
              f"checkpoint: {days}")
        print()
    print(build_table1(result))
    print()
    print(build_deployment_stats(result))
    print()
    print(build_section5_claims(result))
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    from repro.experiments.figures import (
        fig2, fig3, fig4, fig5, fig6,
        format_fig2, format_fig3, format_fig5, format_series,
    )

    result = run_mission(_config(args), execution=_execution(args),
                         quality=args.quality)
    data2 = fig2(result)
    print("=== Figure 2 ===")
    print(format_fig2(*data2, coverage=getattr(data2, "coverage", 1.0)))
    print("\n=== Figure 3 ==="); print(format_fig3(fig3(result, "A")))
    print("\n=== Figure 4 ==="); print(format_series(fig4(result)))
    print("\n=== Figure 5 ==="); print(format_fig5(result, fig5(result)))
    print("\n=== Figure 6 ==="); print(format_series(fig6(result)))
    return 0


def cmd_save(args: argparse.Namespace) -> int:
    from repro.analytics.dataset_io import save_sensing

    result = run_mission(_config(args), execution=_execution(args),
                         quality=args.quality)
    save_sensing(result.sensing, args.path)
    print(f"saved {len(result.sensing.summaries)} badge-days to {args.path}")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analytics.dataset_io import load_sensing
    from repro.analytics.reports import deployment_stats, table1

    sensing = load_sensing(args.path, quality=args.gate)
    if sensing.quality is not None and not sensing.quality.all_ok:
        print(sensing.quality.to_text())
        print()
    print(table1(sensing).to_text())
    print()
    print(deployment_stats(sensing).to_text())
    return 0


def cmd_telemetry(args: argparse.Namespace) -> int:
    import json

    from repro import obs

    obs.reset()
    obs.enable()
    obs.logging.buffer.echo = args.echo_logs
    try:
        result = run_mission(_config(args), execution=_execution(args),
                             quality=args.quality)
        print(result.telemetry.to_text())
        if args.json:
            print()
            print(json.dumps(result.telemetry, indent=2, sort_keys=True, default=float))
    finally:
        obs.reset()
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    import dataclasses
    import json
    import pathlib

    from repro.faults import FaultCampaign

    base_cfg = _config(args)
    out_dir = pathlib.Path(args.out) if args.out else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
    collected: dict[str, dict] = {}
    for i, campaign_seed in enumerate(args.campaign_seed):
        if i:
            print()
        campaign = FaultCampaign.reference(
            days=base_cfg.days, seed=campaign_seed,
            n_beacons=base_cfg.n_beacons, n_badges=base_cfg.crew_size,
        )
        plan = campaign.generate()
        cfg = dataclasses.replace(base_cfg, fault_plan=plan)
        print(f"campaign seed {campaign_seed}: {len(plan.events)} fault events "
              f"({len(plan.bus_events())} bus, {len(plan.sensing_events())} sensing, "
              f"{len(plan.data_events())} data)")
        result = run_mission(cfg, execution=_execution(args), quality=args.quality)
        print()
        print(result.reliability.to_text())
        if result.quality is not None:
            print()
            print(result.quality.to_text())
        print()
        print(f"badge-days sensed: {len(result.sensing.summaries)}, "
              f"SD-card total: {result.sdcard.total_gib():.1f} GiB, "
              f"cards over capacity: {result.sdcard.over_capacity() or 'none'}")
        report_dict = result.reliability.to_dict()
        collected[str(campaign_seed)] = report_dict
        if out_dir is not None:
            path = out_dir / f"faults-seed-{campaign_seed}.json"
            path.write_text(json.dumps(report_dict, indent=2, sort_keys=True) + "\n")
            print(f"wrote {path}")
    if args.json:
        print()
        if len(args.campaign_seed) == 1:
            print(json.dumps(collected[str(args.campaign_seed[0])],
                             indent=2, sort_keys=True))
        else:
            print(json.dumps(collected, indent=2, sort_keys=True))
    return 0


def cmd_reliability(args: argparse.Namespace) -> int:
    import dataclasses
    import json
    import pathlib

    from repro.core.config import MissionConfig
    from repro.faults.campaign import FaultCampaign
    from repro.reliability import (
        CoverageModel,
        ReliabilityModel,
        default_coverage_config,
        sweep_coverage_regimes,
        sweep_regimes,
        validate_campaign,
        validate_coverage_campaign,
    )

    coverage = getattr(args, "coverage", False)

    def _campaign(seed: int) -> FaultCampaign:
        if coverage:
            return FaultCampaign.coverage_reference(days=args.days, seed=seed)
        return FaultCampaign.reference(days=args.days, seed=seed)

    cfg = MissionConfig(days=args.days, seed=args.seed)

    def _model(campaign: FaultCampaign):
        if coverage:
            return CoverageModel(campaign)
        return ReliabilityModel(campaign,
                                earth_link_delay_s=cfg.earth_link_delay_s)

    def _validate(campaign: FaultCampaign):
        if coverage:
            mission_cfg = dataclasses.replace(
                default_coverage_config(campaign), seed=args.seed)
            return validate_coverage_campaign(
                campaign, mission_cfg, confidence=args.confidence)
        return validate_campaign(campaign, cfg, confidence=args.confidence)

    if args.rel_command == "predict":
        prediction = _model(_campaign(args.campaign_seed)).predict(args.confidence)
        print(prediction.to_text())
        if args.json:
            print()
            print(json.dumps(prediction.to_dict(), indent=2, sort_keys=True))
        return 0

    if args.rel_command == "validate":
        result, report = _validate(_campaign(args.campaign_seed))
        print(result.to_text())
        print()
        print(report.to_text())
        if args.json:
            print()
            print(json.dumps(
                {"validation": result.to_dict(), "report": report.to_dict()},
                indent=2, sort_keys=True))
        return 0 if result.all_inside else 1

    # search
    if coverage:
        regimes = sweep_coverage_regimes(
            base=_campaign(0), n_regimes=args.regimes, seed=args.sweep_seed,
            top_k=args.top)
    else:
        regimes = sweep_regimes(
            base=_campaign(0), n_regimes=args.regimes, seed=args.sweep_seed,
            top_k=args.top, earth_link_delay_s=cfg.earth_link_delay_s)
    kind = "coverage" if coverage else "reliability"
    print(f"swept {args.regimes} {kind} regimes analytically; "
          f"top {args.top} predicted-worst:")
    for regime in regimes:
        print(f"  {regime.to_text()}")
    out_dir = pathlib.Path(args.out) if args.out else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
    failures = 0
    prefix = "coverage-regime" if coverage else "regime"
    for regime in regimes:
        artifact = {
            "regime": regime.to_dict(),
            "prediction": _model(regime.campaign).predict(args.confidence).to_dict(),
        }
        if args.empirical:
            result, report = _validate(regime.campaign)
            print()
            print(f"=== regime #{regime.rank} (campaign seed "
                  f"{regime.campaign.seed}) ===")
            print(result.to_text())
            artifact["validation"] = result.to_dict()
            artifact["report"] = report.to_dict()
            if not result.all_inside:
                failures += 1
        if out_dir is not None:
            path = out_dir / f"{prefix}-{regime.rank}.json"
            path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
            print(f"wrote {path}")
    if args.json:
        print()
        print(json.dumps([r.to_dict() for r in regimes], indent=2, sort_keys=True))
    return 1 if failures else 0


def cmd_quality(args: argparse.Namespace) -> int:
    import dataclasses
    import json

    from repro.faults import FaultCampaign

    cfg = _config(args)
    if args.clean:
        mode = "gate"
    else:
        # Target the primary badges: backups mostly carry no data, so
        # corrupting them would be a silent no-op.
        campaign = FaultCampaign.corruption(
            days=cfg.days, seed=args.campaign_seed, n_badges=cfg.crew_size,
        )
        plan = campaign.generate()
        cfg = dataclasses.replace(cfg, fault_plan=plan)
        mode = args.quality if args.quality != "off" else "gate"
        print(f"corruption campaign seed {args.campaign_seed}: "
              f"{len(plan.data_events())} data-corruption events")
        print()
    result = run_mission(cfg, execution=_execution(args), quality=mode)
    print(result.quality.to_text())
    if args.json:
        print()
        print(result.quality.to_json())
    return 0


def _service_errors(fn):
    """Fold service failures into clean one-line CLI errors.

    An unreachable or locked registry must not dump a traceback:
    operational errors exit 2 with one line on stderr, and admission
    rejections exit 75 (EX_TEMPFAIL) so schedulers know to retry.
    """
    import functools

    @functools.wraps(fn)
    def wrapper(args: argparse.Namespace) -> int:
        from repro.service import QueueFullError, ServiceError

        try:
            return fn(args)
        except QueueFullError as exc:
            print(f"repro: {exc}", file=sys.stderr)
            return 75
        except ServiceError as exc:
            print(f"repro: {exc}", file=sys.stderr)
            return 2

    return wrapper


def _service_config(args: argparse.Namespace):
    from repro.service import ServiceConfig

    return ServiceConfig(
        root=args.service,
        n_workers=args.workers,
        queue_depth=args.queue_depth,
        lease_s=args.lease_s,
        max_attempts=args.max_attempts,
        backoff_seed=args.backoff_seed,
        job_timeout_s=args.job_timeout_s,
    )


def _fleet_client(args: argparse.Namespace, *, create: bool = False):
    """Client on the service root; REPRO_REGISTRY_TIMEOUT_S bounds how
    long to wait on a locked registry before giving up with exit 2."""
    import os

    from repro.service import FleetClient

    timeout = float(os.environ.get("REPRO_REGISTRY_TIMEOUT_S", "5.0"))
    return FleetClient(args.service, create=create, busy_timeout_s=timeout)


def _print_job(record) -> None:
    print(f"job {record.job_id}  state={record.state}  "
          f"attempts={record.attempts}/{record.max_attempts}  "
          f"submissions={record.submit_count}")
    print(f"  fingerprint {record.fingerprint}")
    if record.result_path:
        print(f"  result {record.result_path} (digest {record.result_digest})")
    if record.error:
        print(f"  last error: {record.error}")


@_service_errors
def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import serve

    chaos = None
    if args.chaos_kill_after is not None:
        from repro.faults.service import ServiceChaos

        chaos = ServiceChaos(kill_after_completions=args.chaos_kill_after)
    drain = args.drain or args.command == "drain"
    stats = serve(_service_config(args), drain=drain, chaos=chaos,
                  install_signal_handlers=True)
    verb = "drained" if drain else "stopped"
    print(f"{verb}: " + ", ".join(f"{k}={v}" for k, v in sorted(stats.items())))
    return 0


@_service_errors
def cmd_submit(args: argparse.Namespace) -> int:
    kwargs = {"days": args.days, "seed": args.seed}
    if args.no_events:
        kwargs["events"] = None
    if args.frame_dt is not None:
        kwargs["frame_dt"] = args.frame_dt
    cfg = MissionConfig(**kwargs)
    with _fleet_client(args, create=True) as client:
        receipt = client.submit(cfg, quality=args.quality, tenant=args.tenant)
        print(receipt.to_text())
    return 0


@_service_errors
def cmd_status(args: argparse.Namespace) -> int:
    with _fleet_client(args) as client:
        if args.ref is not None:
            _print_job(client.status(args.ref))
            return 0
        overview = client.overview()
        counts = overview["counts"]
        print("fleet: " + ", ".join(f"{k}={v}" for k, v in counts.items()))
        print(f"submissions: {overview['submitted']} "
              f"({overview['deduped']} deduplicated onto "
              f"{overview['jobs']} jobs)")
        probe = client.health()
        print(f"service: live={probe['live']} ready={probe['ready']}"
              + (f" ({probe['detail']})" if probe.get("detail") else ""))
        for letter in overview["dead_letters"]:
            print(f"dead: {letter['job_id']} after {letter['attempts']} "
                  f"attempts: {letter['error']}")
    return 0


@_service_errors
def cmd_result(args: argparse.Namespace) -> int:
    import json

    with _fleet_client(args) as client:
        if args.wait_s is not None:
            client.wait(args.ref, timeout_s=args.wait_s)
        payload = client.result(args.ref)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True, default=float))
    else:
        quality = payload.get("quality") or {}
        print(f"fingerprint {payload['fingerprint']}")
        print(f"badge-days: {payload['badge_days']}, "
              f"SD-card total: {payload['sdcard_gib']:.1f} GiB"
              + (f", quality: {'ok' if quality.get('all_ok') else 'degraded'}"
                 if quality else ""))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of '30 Sensors to Mars' (ICDCS 2019)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="simulate a mission, print Table I")
    _add_mission_args(p_run)
    p_run.set_defaults(func=cmd_run)

    p_fig = sub.add_parser("figures", help="simulate and print every figure")
    _add_mission_args(p_fig)
    p_fig.set_defaults(func=cmd_figures)

    p_save = sub.add_parser("save", help="simulate and persist the dataset")
    _add_mission_args(p_save)
    p_save.add_argument("path", help="output directory")
    p_save.set_defaults(func=cmd_save)

    p_tel = sub.add_parser(
        "telemetry",
        help="run a short instrumented mission and print the telemetry report",
    )
    _add_mission_args(p_tel)
    p_tel.set_defaults(days=2)  # short mission by default; --days overrides
    p_tel.add_argument("--json", action="store_true",
                       help="also dump the raw telemetry snapshot as JSON")
    p_tel.add_argument("--echo-logs", action="store_true",
                       help="echo structured log records to stderr as they happen")
    p_tel.set_defaults(func=cmd_telemetry)

    p_flt = sub.add_parser(
        "faults",
        help="run a faulted mission under a seeded chaos campaign",
    )
    _add_mission_args(p_flt)
    p_flt.set_defaults(days=3)  # short chaos mission by default; --days overrides
    p_flt.add_argument("--campaign-seed", type=int, default=[0], nargs="+",
                       metavar="SEED",
                       help="seed(s) of the randomized fault campaign; "
                            "multiple seeds run a sweep")
    p_flt.add_argument("--json", action="store_true",
                       help="also dump the reliability report(s) as JSON")
    p_flt.add_argument("--out", default=None, metavar="DIR",
                       help="archive each seed's reliability report as "
                            "DIR/faults-seed-<seed>.json (for CI diffing)")
    p_flt.set_defaults(func=cmd_faults)

    p_rel = sub.add_parser(
        "reliability",
        help="analytic CTMC reliability model: predict, validate, search",
    )
    rel_sub = p_rel.add_subparsers(dest="rel_command", required=True)

    def _add_reliability_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--days", type=int, default=14,
                       help="campaign horizon in days (default: 14)")
        p.add_argument("--seed", type=int, default=7,
                       help="mission seed for empirical runs")
        p.add_argument("--confidence", type=float, default=0.998,
                       help="two-sided band confidence (default: 0.998)")
        p.add_argument("--json", action="store_true",
                       help="also dump results as JSON")
        p.add_argument("--coverage", action="store_true",
                       help="use the sensing-level coverage model (data "
                            "corruption, beacon outages, quality-gate "
                            "verdicts) instead of the bus-level model")

    p_pred = rel_sub.add_parser(
        "predict", help="closed-form reliability forecast for a campaign")
    _add_reliability_args(p_pred)
    p_pred.add_argument("--campaign-seed", type=int, default=0,
                        help="seed of the reference fault campaign")
    p_pred.set_defaults(func=cmd_reliability)

    p_val = rel_sub.add_parser(
        "validate",
        help="run a seeded campaign empirically, check it against the "
             "model's confidence bands (exit 1 if any metric is outside)",
    )
    _add_reliability_args(p_val)
    p_val.add_argument("--campaign-seed", type=int, default=0,
                       help="seed of the reference fault campaign")
    p_val.set_defaults(func=cmd_reliability)

    p_srch = rel_sub.add_parser(
        "search",
        help="sweep the fault-rate space analytically, emit the top-K "
             "predicted-worst regimes as seeded campaigns",
    )
    _add_reliability_args(p_srch)
    p_srch.add_argument("--regimes", type=int, default=64,
                        help="number of sampled regimes to score (default: 64)")
    p_srch.add_argument("--top", type=int, default=3,
                        help="how many worst regimes to emit (default: 3)")
    p_srch.add_argument("--sweep-seed", type=int, default=0,
                        help="seed of the regime sampler")
    p_srch.add_argument("--empirical", action="store_true",
                        help="also run each emitted regime empirically and "
                             "validate it against the model")
    p_srch.add_argument("--out", default=None, metavar="DIR",
                        help="write per-regime prediction/validation JSON "
                             "artifacts to DIR (for CI upload)")
    p_srch.set_defaults(func=cmd_reliability)

    p_an = sub.add_parser("analyze", help="analyze a saved dataset")
    p_an.add_argument("path", help="directory written by 'save'")
    p_an.add_argument("--gate", default="gate",
                      choices=("off", "gate", "strict"),
                      help="ingest gate for the loaded dataset "
                           "(default: gate)")
    p_an.set_defaults(func=cmd_analyze)

    p_q = sub.add_parser(
        "quality",
        help="run a data-corruption campaign, print the quality report",
    )
    _add_mission_args(p_q)
    p_q.set_defaults(days=3)  # short mission by default; --days overrides
    p_q.add_argument("--campaign-seed", type=int, default=0,
                     help="seed of the randomized corruption campaign")
    p_q.add_argument("--clean", action="store_true",
                     help="no corruption: gate the pristine dataset instead "
                          "(every verdict should be 'ok')")
    p_q.add_argument("--json", action="store_true",
                     help="also dump the quality report as canonical JSON")
    p_q.set_defaults(func=cmd_quality)

    def _add_service_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument("--service", required=True, metavar="DIR",
                       help="fleet service home directory (holds the durable "
                            "registry, shared cache, journals, and results)")

    def _add_serve_args(p: argparse.ArgumentParser) -> None:
        _add_service_arg(p)
        p.add_argument("--workers", type=int, default=2,
                       help="concurrent mission workers (default: 2)")
        p.add_argument("--queue-depth", type=int, default=256,
                       help="admission-control backlog limit: submissions "
                            "beyond this many in-flight jobs are rejected "
                            "with a retry-after hint (default: 256)")
        p.add_argument("--lease-s", type=float, default=30.0,
                       help="lease duration; a worker silent for this long "
                            "loses its job to the requeue sweep (default: 30)")
        p.add_argument("--max-attempts", type=int, default=3,
                       help="retry budget before a job is dead-lettered "
                            "(default: 3)")
        p.add_argument("--backoff-seed", type=int, default=0,
                       help="seed of the jittered retry backoff (default: 0)")
        p.add_argument("--job-timeout-s", type=float, default=None,
                       help="per-attempt deadline: past it the worker stops "
                            "renewing its lease so the job is reclaimed")
        p.add_argument("--chaos-kill-after", type=int, default=None,
                       metavar="N",
                       help="fault injection: SIGKILL this service process "
                            "after N durably acknowledged completions "
                            "(tier-2 chaos testing)")

    p_serve = sub.add_parser(
        "serve", help="run the mission fleet service until interrupted")
    _add_serve_args(p_serve)
    p_serve.add_argument("--drain", action="store_true",
                         help="exit once the registry holds no runnable work")
    p_serve.set_defaults(func=cmd_serve)

    p_drain = sub.add_parser(
        "drain", help="run the fleet service until the registry is empty")
    _add_serve_args(p_drain)
    p_drain.set_defaults(func=cmd_serve, drain=True)

    p_sub = sub.add_parser(
        "submit", help="queue a mission submission with the fleet service")
    _add_service_arg(p_sub)
    p_sub.add_argument("--days", type=int, default=14,
                       help="mission length in days (default: 14)")
    p_sub.add_argument("--seed", type=int, default=7, help="master RNG seed")
    p_sub.add_argument("--no-events", action="store_true",
                       help="disable the scripted mission events")
    p_sub.add_argument("--frame-dt", type=float, default=None,
                       help="sensing frame period in seconds (coarser is "
                            "faster; default: the paper's)")
    p_sub.add_argument("--quality", default="auto",
                       choices=("auto", "off", "gate", "strict"),
                       help="validating ingest gate mode (default: auto)")
    p_sub.add_argument("--tenant", default="",
                       help="tenant label for per-tenant service metrics")
    p_sub.set_defaults(func=cmd_submit)

    p_st = sub.add_parser(
        "status", help="job record or whole-fleet overview")
    _add_service_arg(p_st)
    p_st.add_argument("ref", nargs="?", default=None,
                      help="job id or submission fingerprint (or unique "
                           "prefix); omit for the fleet overview")
    p_st.set_defaults(func=cmd_status)

    p_res = sub.add_parser(
        "result", help="print the stored result of a completed job")
    _add_service_arg(p_res)
    p_res.add_argument("ref", help="job id or submission fingerprint")
    p_res.add_argument("--wait-s", type=float, default=None, metavar="S",
                       help="block up to S seconds for the job to finish")
    p_res.add_argument("--json", action="store_true",
                       help="dump the full result payload as JSON")
    p_res.set_defaults(func=cmd_result)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
