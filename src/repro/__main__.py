"""Command-line interface: ``python -m repro <command>``.

Commands:
    run        simulate a mission and print Table I + deployment stats
    figures    simulate and print every figure's data
    save       simulate and persist the sensing dataset to a directory
    analyze    re-run all analyses on a previously saved dataset
    telemetry  run a short instrumented mission, print the telemetry report
    faults     run a faulted mission under a seeded chaos campaign
    quality    run a data-corruption campaign and print the quality report
"""

from __future__ import annotations

import argparse
import sys

from repro import (
    ExecutionConfig,
    MissionConfig,
    build_deployment_stats,
    build_section5_claims,
    build_table1,
    run_mission,
)


def _add_mission_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--days", type=int, default=14,
                        help="mission length in days (default: the paper's 14)")
    parser.add_argument("--seed", type=int, default=7, help="master RNG seed")
    parser.add_argument("--no-events", action="store_true",
                        help="disable the scripted mission events")
    parser.add_argument("--workers", default="serial", metavar="N",
                        help="badge-day workers: an integer or 'serial' "
                             "(default; results are identical either way)")
    parser.add_argument("--cache", default=None, metavar="DIR",
                        help="content-addressed result cache directory "
                             "(reruns with an unchanged config load from it)")
    parser.add_argument("--checkpoint", default=None, metavar="DIR",
                        help="crash-recovery checkpoint journal directory: "
                             "each completed day is persisted as it finishes")
    parser.add_argument("--resume", action="store_true",
                        help="restore completed days from the checkpoint "
                             "journal and execute only the remainder "
                             "(requires --checkpoint; bit-identical to an "
                             "uninterrupted run)")
    parser.add_argument("--quality", default="auto",
                        choices=("auto", "off", "gate", "strict"),
                        help="validating ingest gate: 'auto' (default) gates "
                             "only when the fault plan corrupts data, 'gate' "
                             "always, 'strict' raises on quarantines, 'off' "
                             "never")


def _config(args: argparse.Namespace) -> MissionConfig:
    kwargs = {"days": args.days, "seed": args.seed}
    if args.no_events:
        kwargs["events"] = None
    return MissionConfig(**kwargs)


def _execution(args: argparse.Namespace) -> ExecutionConfig:
    workers = args.workers if args.workers == "serial" else int(args.workers)
    return ExecutionConfig(n_workers=workers, cache_dir=args.cache,
                           checkpoint_dir=args.checkpoint, resume=args.resume)


def cmd_run(args: argparse.Namespace) -> int:
    result = run_mission(_config(args), execution=_execution(args),
                         quality=args.quality)
    checkpoint = (result.cache_stats or {}).get("checkpoint")
    if checkpoint is not None and checkpoint["resumed_days"]:
        days = ", ".join(str(d) for d in checkpoint["resumed_days"])
        print(f"resumed {len(checkpoint['resumed_days'])} day(s) from "
              f"checkpoint: {days}")
        print()
    print(build_table1(result))
    print()
    print(build_deployment_stats(result))
    print()
    print(build_section5_claims(result))
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    from repro.experiments.figures import (
        fig2, fig3, fig4, fig5, fig6,
        format_fig2, format_fig3, format_fig5, format_series,
    )

    result = run_mission(_config(args), execution=_execution(args),
                         quality=args.quality)
    data2 = fig2(result)
    print("=== Figure 2 ===")
    print(format_fig2(*data2, coverage=getattr(data2, "coverage", 1.0)))
    print("\n=== Figure 3 ==="); print(format_fig3(fig3(result, "A")))
    print("\n=== Figure 4 ==="); print(format_series(fig4(result)))
    print("\n=== Figure 5 ==="); print(format_fig5(result, fig5(result)))
    print("\n=== Figure 6 ==="); print(format_series(fig6(result)))
    return 0


def cmd_save(args: argparse.Namespace) -> int:
    from repro.analytics.dataset_io import save_sensing

    result = run_mission(_config(args), execution=_execution(args),
                         quality=args.quality)
    save_sensing(result.sensing, args.path)
    print(f"saved {len(result.sensing.summaries)} badge-days to {args.path}")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analytics.dataset_io import load_sensing
    from repro.analytics.reports import deployment_stats, table1

    sensing = load_sensing(args.path, quality=args.gate)
    if sensing.quality is not None and not sensing.quality.all_ok:
        print(sensing.quality.to_text())
        print()
    print(table1(sensing).to_text())
    print()
    print(deployment_stats(sensing).to_text())
    return 0


def cmd_telemetry(args: argparse.Namespace) -> int:
    import json

    from repro import obs

    obs.reset()
    obs.enable()
    obs.logging.buffer.echo = args.echo_logs
    try:
        result = run_mission(_config(args), execution=_execution(args),
                             quality=args.quality)
        print(result.telemetry.to_text())
        if args.json:
            print()
            print(json.dumps(result.telemetry, indent=2, sort_keys=True, default=float))
    finally:
        obs.reset()
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    import dataclasses
    import json

    from repro.faults import FaultCampaign

    cfg = _config(args)
    campaign = FaultCampaign.reference(
        days=cfg.days, seed=args.campaign_seed,
        n_beacons=cfg.n_beacons, n_badges=cfg.crew_size,
    )
    plan = campaign.generate()
    cfg = dataclasses.replace(cfg, fault_plan=plan)
    print(f"campaign seed {args.campaign_seed}: {len(plan.events)} fault events "
          f"({len(plan.bus_events())} bus, {len(plan.sensing_events())} sensing, "
          f"{len(plan.data_events())} data)")
    result = run_mission(cfg, execution=_execution(args), quality=args.quality)
    print()
    print(result.reliability.to_text())
    if result.quality is not None:
        print()
        print(result.quality.to_text())
    print()
    print(f"badge-days sensed: {len(result.sensing.summaries)}, "
          f"SD-card total: {result.sdcard.total_gib():.1f} GiB, "
          f"cards over capacity: {result.sdcard.over_capacity() or 'none'}")
    if args.json:
        print()
        print(json.dumps(result.reliability.to_dict(), indent=2, sort_keys=True))
    return 0


def cmd_quality(args: argparse.Namespace) -> int:
    import dataclasses
    import json

    from repro.faults import FaultCampaign

    cfg = _config(args)
    if args.clean:
        mode = "gate"
    else:
        # Target the primary badges: backups mostly carry no data, so
        # corrupting them would be a silent no-op.
        campaign = FaultCampaign.corruption(
            days=cfg.days, seed=args.campaign_seed, n_badges=cfg.crew_size,
        )
        plan = campaign.generate()
        cfg = dataclasses.replace(cfg, fault_plan=plan)
        mode = args.quality if args.quality != "off" else "gate"
        print(f"corruption campaign seed {args.campaign_seed}: "
              f"{len(plan.data_events())} data-corruption events")
        print()
    result = run_mission(cfg, execution=_execution(args), quality=mode)
    print(result.quality.to_text())
    if args.json:
        print()
        print(result.quality.to_json())
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of '30 Sensors to Mars' (ICDCS 2019)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="simulate a mission, print Table I")
    _add_mission_args(p_run)
    p_run.set_defaults(func=cmd_run)

    p_fig = sub.add_parser("figures", help="simulate and print every figure")
    _add_mission_args(p_fig)
    p_fig.set_defaults(func=cmd_figures)

    p_save = sub.add_parser("save", help="simulate and persist the dataset")
    _add_mission_args(p_save)
    p_save.add_argument("path", help="output directory")
    p_save.set_defaults(func=cmd_save)

    p_tel = sub.add_parser(
        "telemetry",
        help="run a short instrumented mission and print the telemetry report",
    )
    _add_mission_args(p_tel)
    p_tel.set_defaults(days=2)  # short mission by default; --days overrides
    p_tel.add_argument("--json", action="store_true",
                       help="also dump the raw telemetry snapshot as JSON")
    p_tel.add_argument("--echo-logs", action="store_true",
                       help="echo structured log records to stderr as they happen")
    p_tel.set_defaults(func=cmd_telemetry)

    p_flt = sub.add_parser(
        "faults",
        help="run a faulted mission under a seeded chaos campaign",
    )
    _add_mission_args(p_flt)
    p_flt.set_defaults(days=3)  # short chaos mission by default; --days overrides
    p_flt.add_argument("--campaign-seed", type=int, default=0,
                       help="seed of the randomized fault campaign")
    p_flt.add_argument("--json", action="store_true",
                       help="also dump the reliability report as JSON")
    p_flt.set_defaults(func=cmd_faults)

    p_an = sub.add_parser("analyze", help="analyze a saved dataset")
    p_an.add_argument("path", help="directory written by 'save'")
    p_an.add_argument("--gate", default="gate",
                      choices=("off", "gate", "strict"),
                      help="ingest gate for the loaded dataset "
                           "(default: gate)")
    p_an.set_defaults(func=cmd_analyze)

    p_q = sub.add_parser(
        "quality",
        help="run a data-corruption campaign, print the quality report",
    )
    _add_mission_args(p_q)
    p_q.set_defaults(days=3)  # short mission by default; --days overrides
    p_q.add_argument("--campaign-seed", type=int, default=0,
                     help="seed of the randomized corruption campaign")
    p_q.add_argument("--clean", action="store_true",
                     help="no corruption: gate the pristine dataset instead "
                          "(every verdict should be 'ok')")
    p_q.add_argument("--json", action="store_true",
                     help="also dump the quality report as canonical JSON")
    p_q.set_defaults(func=cmd_quality)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
