"""Crew dynamics study: conversations, meetings, anomalies, surveys.

Reproduces the paper's sociometric analyses on the death-day: group
meetings and the unplanned consolation gathering, daily speech trends,
the badge-swap anomaly, pairwise relations, and the survey
cross-validation loop.

Run:
    python examples/crew_dynamics.py
"""

from repro import MissionConfig, run_mission
from repro.analytics.anomalies import badge_swap_suspicions, unplanned_gatherings
from repro.analytics.interactions import pair_meeting_seconds, private_talk_seconds
from repro.analytics.meetings import detect_meetings
from repro.analytics.speech import daily_speech_fraction
from repro.core.units import hhmm
from repro.surveys.responses import synthesize_responses
from repro.surveys.validation import validation_report


def main() -> None:
    cfg = MissionConfig(days=8, seed=7)
    print(f"simulating {cfg.days} days (C dies on day {cfg.events.death_day}, "
          f"A and B swap badges on day {cfg.events.badge_swap_day}) ...")
    result = run_mission(cfg)
    sensing = result.sensing
    truth = result.truth
    plan = truth.plan

    day = cfg.events.death_day
    print(f"\nmeetings detected on day {day}:")
    for meeting in detect_meetings(sensing, day, min_participants=4):
        print(f"  {plan.name_of(meeting.room):>8} {hhmm(meeting.t0)}-{hhmm(meeting.t1)} "
              f"{len(meeting.badge_ids)} badges, {meeting.mean_voice_db:.0f} dB")

    scheduled = [
        (s.t0, s.t1) for s in truth.schedules[day].of("B")
        if s.activity.is_group and s.label != "consolation"
    ]
    print("\nunplanned gatherings (vs the official schedule):")
    for meeting in unplanned_gatherings(sensing, day, scheduled):
        print(f"  {plan.name_of(meeting.room)} at {hhmm(meeting.t0)} -- "
              f"{meeting.mean_voice_db:.0f} dB (the consolation meeting)")

    print("\ndaily speech fraction (decline + who talks most):")
    speech = daily_speech_fraction(sensing)
    for astro in sorted(speech):
        series = " ".join(f"{speech[astro].get(d, float('nan')):.2f}"
                          for d in sensing.days)
        print(f"  {astro}: {series}")

    print("\nbadge-swap suspicions under the naive one-owner assumption:")
    for suspicion in badge_swap_suspicions(sensing, corrected=False):
        print(f"  badge {suspicion.badge_id} on day {suspicion.day}: assumed "
              f"{suspicion.assumed_astro} ({suspicion.expected_sex}), voice pitch "
              f"{suspicion.observed_median_pitch_hz:.0f} Hz says otherwise")

    private = private_talk_seconds(sensing)
    meetings = pair_meeting_seconds(sensing)
    print("\npairwise relations:")
    for pair in (("A", "F"), ("D", "E")):
        key = tuple(sorted(pair))
        print(f"  {pair[0]}-{pair[1]}: private {private.get(key, 0) / 3600:.1f} h, "
              f"all meetings {meetings.get(key, 0) / 3600:.1f} h")

    print("\nsensor-vs-survey validation:")
    responses = synthesize_responses(truth)
    print(validation_report(sensing, responses))


if __name__ == "__main__":
    main()
