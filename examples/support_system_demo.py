"""Mission support system demo: the paper's Section VI, running.

Builds the distributed support-system prototype and walks through its
scenarios: live streaming of badge data into the alert engine, the
day-12 contradictory-instruction incident over the 20-minute Earth
link, replica failover, a multi-party authorization round (with an
emergency override during a comms blackout), hydration tracking, and a
crew privacy request.

Run:
    python examples/support_system_demo.py
"""

from repro import MissionConfig, run_mission
from repro.core.engine import Simulator
from repro.support.alerts import AlertEngine
from repro.support.authorization import AuthorizationService, EarthVoter
from repro.support.bus import Network
from repro.support.hydration import HydrationTracker, fluid_events_from_truth
from repro.support.mission_control import EarthLink
from repro.support.privacy import PrivacyManager
from repro.support.replication import ReplicatedService
from repro.support.scheduling import ReschedulingAdvisor
from repro.support.stream import SensorStream, summarize_window


def streaming_and_alerts(result) -> None:
    print("\n--- live streaming into the alert engine ---")
    sim = Simulator()
    net = Network(sim)
    engine = AlertEngine("alerts", sim)
    net.register(engine)
    day = result.sensing.days[-1]  # late mission: compliance is low
    for badge_id in result.sensing.badges_on(day):
        stream = SensorStream(
            f"stream-{badge_id}", sim, result.sensing.summary(badge_id, day),
            subscribers=["alerts"], window_s=300.0, time_scale=500.0,
        )
        net.register(stream)
        stream.start()
    sim.run()
    print(f"windows processed: {engine.inbox_count}")
    for alert in engine.alerts:
        print(f"  {alert}")


def day12_incident() -> None:
    print("\n--- the day-12 incident: 20-minute-old instructions ---")
    sim = Simulator()
    link = EarthLink.build(Network(sim), sim)
    link.mission_control.issue("rover-route", "take the southern route")
    sim.run_until(600.0)
    link.habitat_agent.decide_locally("rover-route", "take the northern route")
    print("t=600 s: crew decides autonomously (cannot wait a 40-minute RTT)")
    sim.run()
    c = link.habitat_agent.contradictions[0]
    print(f"t={c.detected_at:.0f} s: command arrives {c.staleness_s:.0f} s stale "
          f"and contradicts the local decision")
    print(f"reprimands received from Earth: {link.habitat_agent.reprimands_received}")


def failover() -> None:
    print("\n--- replica failover (what the reference badge lacked) ---")
    sim = Simulator()
    net = Network(sim, default_latency_s=0.01)
    svc = ReplicatedService.build(net, sim)
    for k in range(3):
        svc.submit(f"state-update-{k}")
    sim.run_until(5.0)
    net.crash("svc-a")
    print("t=5 s: primary crashes")
    sim.run_until(15.0)
    print(f"t={svc.backup.took_over_at:.1f} s: backup promotes itself; "
          f"state intact ({len(svc.backup.state)} entries); "
          f"new writes accepted: {svc.submit('post-failover')}")


def authorization() -> None:
    print("\n--- multi-party authorization ---")
    sim = Simulator()
    net = Network(sim)
    auth = AuthorizationService("auth", sim, crew=list("ABDEF"))
    net.register(auth)
    net.register(EarthVoter("earth", sim, "auth"))
    net.set_link_latency("auth", "earth", 1200.0)
    net.set_link_latency("earth", "auth", 1200.0)

    routine = auth.propose("B", "double the microphone sampling rate")
    for astro in "ADEF":
        auth.vote(routine.proposal_id, astro, True)
    net.partition("auth", "earth")
    emergency = auth.propose("B", "vent module 3 to stop a fire", emergency=True)
    auth.vote(emergency.proposal_id, "A", True)
    auth.vote(emergency.proposal_id, "D", True)
    print(f"emergency proposal (Earth unreachable): {emergency.state.value} "
          f"after {len(emergency.votes)} crew votes, t={emergency.decided_at:.0f} s")
    net.heal("auth", "earth")
    sim.run_until(4000.0)
    print(f"routine proposal: {routine.state.value} at t={routine.decided_at:.0f} s "
          f"(waited for mission control's delayed confirmation)")


def hydration(result) -> None:
    print("\n--- hydration tracking (urine processor + smart mugs + badges) ---")
    sim = Simulator()
    tracker = HydrationTracker("hydro", sim, list(result.truth.roster.ids))
    Network(sim).register(tracker)
    day = result.sensing.days[0]
    for event in fluid_events_from_truth(result.truth, day):
        tracker.ingest(event)
    for astro in result.truth.roster.ids:
        print(f"  {astro}: end-of-day balance {tracker.balance(astro):+.0f} ml")
    for alert in tracker.alerts:
        print(f"  {alert}")


def rescheduling(result) -> None:
    print("\n--- rescheduling advice from sociometric indicators ---")
    advisor = ReschedulingAdvisor()
    day = result.sensing.days[-1]
    for badge_id in result.sensing.badges_on(day):
        summary = result.sensing.summary(badge_id, day)
        # Feed the late-afternoon windows (when fatigue shows).
        for k in range(8):
            lo = summary.t0 + (30 + k) * 300.0
            advisor.observe(summarize_window(summary, lo, lo + 300.0))
    advice = advisor.advise()
    if not advice:
        print("no advice needed -- the crew looks fresh")
    for item in advice:
        print(f"  [{item.urgency:.2f}] {item.kind} (badge {item.badge_id}): {item.detail}")


def privacy() -> None:
    print("\n--- crew privacy controls ---")
    manager = PrivacyManager()
    window = manager.request("E", "microphone", 15 * 3600.0, 15.5 * 3600.0,
                             reason="private call with family")
    print(f"granted: suppress {window.sensor} for {window.astro_id}, "
          f"{(window.t1 - window.t0) / 60:.0f} minutes")
    print("audit trail:")
    for line in manager.audit:
        print(f"  {line}")


def main() -> None:
    cfg = MissionConfig(days=4, seed=9)
    print(f"simulating {cfg.days} days to feed the support system ...")
    result = run_mission(cfg)
    streaming_and_alerts(result)
    day12_incident()
    failover()
    authorization()
    hydration(result)
    rescheduling(result)
    privacy()


if __name__ == "__main__":
    main()
