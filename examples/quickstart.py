"""Quickstart: simulate a short analog mission and print the headline analyses.

Run:
    python examples/quickstart.py
"""

from repro import MissionConfig, build_deployment_stats, build_table1, run_mission


def main() -> None:
    # A 6-day mission keeps the scripted death of astronaut C (day 4)
    # while staying fast; the full paper mission is MissionConfig().
    cfg = MissionConfig(days=6, seed=42)
    print(f"simulating a {cfg.days}-day mission (seed {cfg.seed}) ...")
    result = run_mission(cfg)

    print("\nTable I -- normalized per-astronaut parameters:")
    print(build_table1(result))

    print("\nDeployment statistics:")
    print(build_deployment_stats(result))

    sensing = result.sensing
    print(f"\ninstrumented days: {sensing.days}")
    print(f"badge-days of data: {len(sensing.summaries)}")


if __name__ == "__main__":
    main()
