"""Full ICAres-1 replay: regenerate every table and figure of the paper.

This is the complete reproduction run — the 14-day mission with all
scripted events — printing the data behind Figures 2-6 and Table I.

Run (takes a couple of minutes):
    python examples/mission_replay.py
"""

from repro import (
    MissionConfig,
    build_deployment_stats,
    build_section5_claims,
    build_table1,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    run_mission,
)
from repro.experiments.figures import (
    format_fig2,
    format_fig3,
    format_fig5,
    format_series,
)


def main() -> None:
    cfg = MissionConfig()  # the paper's mission: 14 days, 6 astronauts
    print("simulating the full ICAres-1 mission ...")
    result = run_mission(cfg)

    print("\n=== Figure 2: room-to-room passages (10 s stay filter) ===")
    names, counts = fig2(result)
    print(format_fig2(names, counts))

    print("\n=== Figure 3: astronaut A's occupancy heatmap (28 cm grid) ===")
    print(format_fig3(fig3(result, "A")))

    print("\n=== Figure 4: daily walking fractions, days 2-8 ===")
    print(format_series(fig4(result, tuple(range(2, 9)))))

    print("\n=== Figure 5: the death-day timeline ===")
    print(format_fig5(result, fig5(result)))

    print("\n=== Figure 6: daily speech fractions ===")
    print(format_series(fig6(result)))

    print("\n=== Table I ===")
    print(build_table1(result))

    print("\n=== Deployment statistics (Section V) ===")
    print(build_deployment_stats(result))

    print("\n=== Section V in-text claims ===")
    print(build_section5_claims(result))


if __name__ == "__main__":
    main()
