"""Habitat ergonomics study: is the habitat arranged optimally?

Reproduces the paper's ergonomics analysis: which room pairs see the
most traffic (should the kitchen sit next to the office?), how long the
characteristic work sessions are per room, and where each astronaut's
time actually goes.

Run:
    python examples/habitat_ergonomics.py
"""

import numpy as np

from repro import MissionConfig, run_mission
from repro.analytics.occupancy import room_occupancy_seconds, stay_durations_by_room
from repro.analytics.transitions import (
    kitchen_inflow_share,
    top_transitions,
    transition_matrix,
)


def main() -> None:
    cfg = MissionConfig(days=8, seed=3)
    print(f"simulating {cfg.days} days ...")
    result = run_mission(cfg)
    sensing = result.sensing

    names, counts = transition_matrix(sensing)
    print("\nmost frequent passages (min 10 s stay in the destination):")
    for src, dst, n in top_transitions(names, counts, k=8):
        print(f"  {src:>9} -> {dst:<9} {n:>4}")

    print("\nwhere kitchen-bound traffic comes from:")
    for room, share in sorted(kitchen_inflow_share(names, counts).items(),
                              key=lambda kv: -kv[1]):
        if share > 0:
            print(f"  {room:>9}: {share:.0%}")
    print("  -> the kitchen should sit close to the office and workshop.")

    print("\ncharacteristic work-session lengths:")
    for room, durations in sorted(stay_durations_by_room(sensing).items()):
        if room in ("office", "workshop", "biolab"):
            hours = np.array(durations) / 3600.0
            print(f"  {room:>9}: median {np.median(hours):.1f} h, "
                  f"longest {hours.max():.1f} h ({len(hours)} sessions)")
    print("  -> office/workshop work absorbs people far longer than biolab.")

    print("\ntotal badge-time per room:")
    occupancy = room_occupancy_seconds(sensing)
    total = sum(occupancy.values())
    for room, seconds in sorted(occupancy.items(), key=lambda kv: -kv[1]):
        print(f"  {room:>9}: {seconds / 3600:.0f} h ({seconds / total:.0%})")


if __name__ == "__main__":
    main()
