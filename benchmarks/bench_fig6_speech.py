"""Figure 6: daily fraction of 15-second intervals with detected speech.

Shape targets: early-mission values roughly 0.4-0.8; a declining trend
("they talked less the closer the mission end was"); a collapse on the
famine (11) and reprimand (12) days; C the top talker while present.
"""

import numpy as np

from benchmarks.conftest import write_artifact
from repro.experiments.figures import fig6, format_series


def test_fig6_speech(benchmark, paper_result, artifact_dir):
    series = benchmark(fig6, paper_result)

    write_artifact(artifact_dir, "fig6_speech.txt", format_series(series))

    def crew_mean(day):
        values = [s[day] for s in series.values() if day in s]
        return float(np.mean(values))

    events = paper_result.cfg.events
    early = np.mean([crew_mean(d) for d in (2, 3)])
    late = np.mean([crew_mean(d) for d in (13, 14)])
    assert 0.3 < early < 0.9          # paper's early band
    assert late < 0.75 * early        # declining trend
    assert crew_mean(events.famine_day) < 0.45 * early      # day-11 collapse
    assert crew_mean(events.reprimand_day) < 0.45 * early   # day-12 collapse

    # C dominates on the days C is present.
    for day in (2, 3):
        assert series["C"][day] == max(s.get(day, 0.0) for s in series.values())
