"""Figure 2: room-to-room passage counts.

Regenerates the transition matrix (10 s minimum-stay filter, main hall
excluded) and checks its headline shape: office<->kitchen and
workshop<->kitchen passages dominate.
"""

from benchmarks.conftest import write_artifact
from repro.experiments.figures import fig2, format_fig2
from repro.analytics.transitions import kitchen_inflow_share, top_transitions


def test_fig2_transition_matrix(benchmark, paper_result, artifact_dir):
    names, counts = benchmark(fig2, paper_result)

    text = format_fig2(names, counts)
    top = top_transitions(names, counts, k=6)
    text += "\n\ntop passages: " + ", ".join(f"{a}->{b}:{n}" for a, b, n in top)
    write_artifact(artifact_dir, "fig2_transitions.txt", text)

    # Shape checks mirroring the paper's reading of the figure.
    kitchen_pairs = {(a, b) for a, b, __ in top if "kitchen" in (a, b)}
    assert any("office" in pair for pair in kitchen_pairs)
    assert any("workshop" in pair for pair in kitchen_pairs)
    shares = kitchen_inflow_share(names, counts)
    assert shares["office"] + shares["workshop"] > 0.4
    assert 100 <= counts.max() <= 400  # paper scale: max around 200
