"""Reliability under the reference fault campaign, and the cost of it.

Two guards: (1) under the seeded 14-day reference chaos campaign the
support stack must keep delivery success high, fail over within the
configured timeout, and end with a single primary; (2) the reliable
layer must be effectively free when nothing fails — the receive-path
branches it adds cost under 10% of a baseline message delivery, and on a
loss-free link reliable sends ack with zero retries and no added
sim-time latency.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import write_artifact
from repro.core.config import MissionConfig
from repro.core.engine import Simulator
from repro.core.units import DAY
from repro.faults.campaign import FaultCampaign
from repro.faults.scenario import FAILOVER_TIMEOUT_S, HEARTBEAT_S, run_support_scenario
from repro.support.bus import Message, Network, Node

MAX_RECEIVE_OVERHEAD_FRACTION = 0.10


def reference_campaign_scenario():
    cfg = MissionConfig(days=14, seed=7)
    plan = FaultCampaign.reference(days=14, seed=0).generate()
    report = run_support_scenario(cfg, plan)
    return plan, report


def test_reference_campaign_reliability(benchmark, artifact_dir):
    plan, report = benchmark(reference_campaign_scenario)

    # Failover latency: for each crash of the original primary, the time
    # until the next backup take-over — if one happened promptly.  (Link
    # flaps also trigger take-overs, so attribution goes crash -> first
    # take-over within the detection window, not the other way around.)
    window = FAILOVER_TIMEOUT_S + 2 * HEARTBEAT_S
    crashes_a = [e.time_s for e in plan.events
                 if e.action == "crash" and e.target == "svc-a"]
    takeovers = report.takeovers()
    failover_latencies = []
    for crash in crashes_a:
        prompt = [t for t in takeovers if crash < t <= crash + window]
        if prompt:
            failover_latencies.append(min(prompt) - crash)

    write_artifact(
        artifact_dir, "fault_campaign.txt",
        report.to_text() + "\nfailover latencies: "
        + ", ".join(f"{lat:.0f} s" for lat in failover_latencies),
    )

    # Delivery: reliable kinds survive the campaign with high success
    # and the no-silent-loss invariant holds exactly.
    assert report.pending == 0
    for kind in ("submit", "status"):
        entry = report.delivery[kind]
        assert entry["sent"] == entry["acked"] + entry["dead"]
        assert report.delivery_success(kind) > 0.9
    # Failover: the backup notices a dead primary within the timeout
    # plus one heartbeat/monitor period, and the pair heals afterwards.
    # Measured from the crash instant, detection may undershoot the
    # timeout by up to two heartbeats (the peer's last heartbeat
    # predates the crash) and overshoot by the monitor period.
    assert failover_latencies, "campaign crashed svc-a but no prompt takeover"
    assert all(
        FAILOVER_TIMEOUT_S - 2 * HEARTBEAT_S < lat <= window
        for lat in failover_latencies
    )
    assert not report.split_brain_at_end
    assert report.primary_at_end is not None
    # Availability reflects the injected downtime windows.
    assert report.n_outages > 0
    assert report.mttr_s is not None
    assert min(report.availability.values()) < 1.0


def test_reliable_receive_overhead_under_10pct():
    """The reliability branches on the hot receive path are nearly free.

    Fire-and-forget messages pay only two added checks (`kind ==
    ACK_KIND`, `msg_id is None`); measure a full send->deliver cycle
    with the current code and bound those checks' cost by timing them
    directly against the measured per-message delivery time.
    """
    def per_message_delivery_s():
        sim = Simulator()
        network = Network(sim, default_latency_s=0.0)
        a, b = Node("a", sim), Node("b", sim)
        network.register(a)
        network.register(b)
        n = 20_000
        t0 = time.perf_counter()
        for k in range(n):
            a.send("b", "tick", k)
            sim.run()
        return (time.perf_counter() - t0) / n

    delivery_s = min(per_message_delivery_s() for _ in range(3))

    # The two predicates the reliable layer adds to every dispatch.
    message = Message("a", "b", "tick", payload=1)
    reps = 200_000
    t0 = time.perf_counter()
    for _ in range(reps):
        _ = message.kind == "__ack__"
        _ = message.msg_id is not None
    branch_s = (time.perf_counter() - t0) / reps

    assert branch_s < MAX_RECEIVE_OVERHEAD_FRACTION * delivery_s, (
        f"reliability checks cost {branch_s * 1e9:.0f} ns per message, over "
        f"10% of a {delivery_s * 1e6:.1f} us delivery"
    )


def test_reliable_send_free_on_no_fault_path(artifact_dir):
    """On a healthy network, send_reliable == send + one ack: no
    retries, no duplicates, no dead letters, same delivery time."""
    sim = Simulator()
    network = Network(sim, default_latency_s=0.05)
    received_at: list[float] = []

    class Sink(Node):
        def handle_job(self, message):
            received_at.append(self.sim.now)

    a, b = Node("a", sim), Sink("b", sim)
    network.register(a)
    network.register(b)
    n = 500
    for k in range(n):
        sim.schedule_at(float(k), a.send_reliable, "b", "job", k)
    sim.run()

    sent_at = np.arange(n, dtype=float)
    latencies = np.asarray(received_at) - sent_at
    write_artifact(
        artifact_dir, "fault_nofault_overhead.txt",
        f"{n} reliable sends on a healthy link: "
        f"acked {a.reliable.acked['job']}, retries {a.reliable.retries}, "
        f"dead-letters {len(a.dead_letters)}, "
        f"delivery latency {latencies.mean() * 1e3:.1f} ms (= link latency)",
    )
    assert a.reliable.acked == {"job": n}          # 100% first-attempt acks
    assert a.reliable.retries == 0
    assert not a.dead_letters
    assert b.duplicates_suppressed == 0
    assert np.allclose(latencies, 0.05)            # no added sim-time latency
