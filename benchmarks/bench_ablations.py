"""Ablations of the design choices DESIGN.md calls out.

1. The 10-second minimum-stay filter (paper's doorway-leakage fix).
2. Beacon density vs room-detection accuracy.
3. Clock drift (time sync disabled) vs co-location agreement.
4. Wear compliance vs analysis robustness.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.core.config import MissionConfig
from repro.crew.behavior import simulate_mission
from repro.experiments.ablations import (
    ablate_beacon_density,
    ablate_stay_filter,
    ablate_time_sync,
    ablate_wear_compliance,
)


@pytest.fixture(scope="module")
def small_cfg():
    return MissionConfig(days=3, seed=5, events=None)


@pytest.fixture(scope="module")
def small_truth(small_cfg):
    return simulate_mission(small_cfg)


def test_ablate_stay_filter(benchmark, small_cfg, small_truth, artifact_dir):
    sweep = benchmark.pedantic(
        ablate_stay_filter, args=(small_cfg, small_truth), rounds=1, iterations=1
    )
    text = "\n".join(f"  min-stay {t:>4.0f} s -> {n} transitions" for t, n in sweep.items())
    write_artifact(artifact_dir, "ablation_stay_filter.txt", text)

    # Without the filter, leakage manufactures spurious passages; by
    # 10 s the count has flattened (the paper's choice).
    assert sweep[0.0] > 1.15 * sweep[10.0]
    assert sweep[10.0] < 1.3 * sweep[20.0]


def test_ablate_beacon_density(benchmark, small_cfg, small_truth, artifact_dir):
    sweep = benchmark.pedantic(
        ablate_beacon_density, args=(small_cfg, small_truth), rounds=1, iterations=1
    )
    text = "\n".join(f"  {n:>2} beacons -> room accuracy {a:.3f}" for n, a in sweep.items())
    write_artifact(artifact_dir, "ablation_beacon_density.txt", text)

    assert sweep[27] > 0.99              # the paper's "perfect" detection
    assert sweep[27] >= sweep[9] >= sweep[3]
    assert sweep[3] < 0.9                # sparse coverage breaks it


def test_ablate_time_sync(benchmark, paper_result, artifact_dir):
    sweep = benchmark(ablate_time_sync, paper_result)
    text = "\n".join(
        f"  clock skew {s:>5.1f} s -> conversation synchrony {a:.3f}"
        for s, a in sweep.items()
    )
    write_artifact(artifact_dir, "ablation_time_sync.txt", text)

    assert sweep[0.0] == 1.0
    values = list(sweep.values())
    assert values == sorted(values, reverse=True)  # monotone degradation
    assert sweep[15.0] < 0.8  # unsynced fleet scrambles turn alignment


def test_ablate_wear_compliance(benchmark, small_cfg, artifact_dir):
    sweep = benchmark.pedantic(
        ablate_wear_compliance, args=(small_cfg,),
        kwargs={"levels": (0.9, 0.5, 0.3)}, rounds=1, iterations=1,
    )
    text = "\n".join(
        f"  compliance {level:.0%} -> speech {m['mean_speech_fraction']:.3f}, "
        f"company {m['company_h']:.1f} h, IR contact {m['ir_contact_h']:.1f} h"
        for level, m in sweep.items()
    )
    write_artifact(artifact_dir, "ablation_wear_compliance.txt", text)

    # Room-level speech detection survives low compliance (a badge on a
    # desk still hears the room); person-attributed measures do not.
    # (The 30% setting bottoms out around ~45% actually worn: badges
    # must be worn between rooms and during meals, so compliance can't
    # fall arbitrarily low -- a floor the real deployment also had.)
    assert sweep[0.3]["mean_speech_fraction"] > 0.6 * sweep[0.9]["mean_speech_fraction"]
    assert sweep[0.3]["company_h"] < 0.7 * sweep[0.9]["company_h"]
    assert sweep[0.3]["ir_contact_h"] < 0.75 * sweep[0.9]["ir_contact_h"]
