"""Benchmarks of the execution engine: parallel speedup and cache reuse.

Two claims are measured:

1. Fanning the 14-day mission's badge-day work across 4 workers is at
   least 2x faster than the serial walk (asserted only where 4+ CPUs
   exist; the timing artifact is written everywhere).
2. Re-running an ablation sweep against a warm content-addressed cache
   costs under 25% of the cold run — the sweep's missions load their
   ground truth and day summaries instead of recomputing them.

Both runs are also checked for bit-identical summaries: the execution
engine must never trade correctness for speed.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from benchmarks.conftest import write_artifact
from repro.core.config import ExecutionConfig, MissionConfig
from repro.experiments.ablations import ablate_wear_compliance
from repro.experiments.mission import run_mission

_SUMMARY_ARRAYS = (
    "active", "worn", "room", "x", "y", "accel_rms", "voice_db",
    "dominant_pitch_hz", "pitch_stability", "sound_db", "true_room",
)


def assert_identical(a, b) -> None:
    """Bitwise equality of every badge-day summary (NaNs included)."""
    assert set(a.sensing.summaries) == set(b.sensing.summaries)
    for key in a.sensing.summaries:
        sa = a.sensing.summaries[key]
        sb = b.sensing.summaries[key]
        for name in _SUMMARY_ARRAYS:
            va, vb = getattr(sa, name), getattr(sb, name)
            if va is None or vb is None:
                assert va is None and vb is None, (key, name)
            else:
                assert va.tobytes() == vb.tobytes(), (key, name)
        assert sa.bytes_recorded == sb.bytes_recorded, key
        assert sa.n_sync_events == sb.n_sync_events, key
    assert a.sdcard.total_gib() == b.sdcard.total_gib()


@pytest.mark.tier2
def test_parallel_speedup_14_day_mission(artifact_dir):
    cfg = MissionConfig()  # the paper's 14-day mission

    t0 = time.perf_counter()
    serial = run_mission(cfg)
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = run_mission(cfg, truth=serial.truth,
                           execution=ExecutionConfig(n_workers=4))
    t_parallel = time.perf_counter() - t0

    assert_identical(serial, parallel)

    cpus = os.cpu_count() or 1
    speedup = t_serial / t_parallel if t_parallel > 0 else float("inf")
    write_artifact(
        artifact_dir, "parallel_speedup.txt",
        f"14-day mission, {cpus} CPUs\n"
        f"  serial:             {t_serial:8.1f} s\n"
        f"  parallel (4 workers): {t_parallel:6.1f} s\n"
        f"  speedup:            {speedup:8.2f}x\n"
        f"  summaries:          bit-identical",
    )
    if cpus >= 4:
        assert speedup >= 2.0, f"expected >=2x on {cpus} CPUs, got {speedup:.2f}x"


@pytest.mark.tier2
def test_warm_cache_ablation_rerun(tmp_path, artifact_dir):
    cfg = MissionConfig(days=3, seed=5, frame_dt=5.0, events=None)
    execution = ExecutionConfig(cache_dir=str(tmp_path / "cache"))
    levels = (0.9, 0.5)

    t0 = time.perf_counter()
    cold = ablate_wear_compliance(cfg, levels=levels, execution=execution)
    t_cold = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = ablate_wear_compliance(cfg, levels=levels, execution=execution)
    t_warm = time.perf_counter() - t0

    for level in levels:
        for metric, value in cold[level].items():
            assert np.isclose(value, warm[level][metric], rtol=0, atol=0), (
                level, metric)

    write_artifact(
        artifact_dir, "warm_cache_ablation.txt",
        f"wear-compliance sweep, {len(levels)} levels, {cfg.days}-day missions\n"
        f"  cold (empty cache): {t_cold:6.1f} s\n"
        f"  warm (cache hits):  {t_warm:6.1f} s\n"
        f"  warm/cold:          {t_warm / t_cold:6.1%}",
    )
    assert t_warm < 0.25 * t_cold, (
        f"warm re-run took {t_warm / t_cold:.0%} of cold (limit 25%)")
