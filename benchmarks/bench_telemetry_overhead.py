"""Benchmark guard: disabled telemetry must be free.

Every instrumentation point in the pipeline starts with one boolean
read, so a telemetry-disabled run must stay within 5% of the
uninstrumented baseline.  We verify that bound directly: count the
instrumentation operations one ``sense_day`` actually performs (from a
telemetry-enabled run), measure the per-operation cost of the disabled
fast path, and check that their product is under 5% of the measured
``sense_day`` wall time.  This is deterministic where timing two full
runs against each other is noisy.
"""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.badges.assignment import BadgeAssignment
from repro.badges.pipeline import SensingModels, make_fleet, sense_day
from repro.core.config import MissionConfig
from repro.core.rng import RngRegistry
from repro.crew.behavior import simulate_mission

MAX_OVERHEAD_FRACTION = 0.05


def _run_sense_day(cfg, truth, assignment, models):
    rngs = RngRegistry(3)
    fleet = make_fleet(assignment, rngs)
    return sense_day(truth, 2, assignment, models, fleet, rngs)


@pytest.mark.tier2
def test_disabled_telemetry_overhead_under_5pct():
    cfg = MissionConfig(days=2, seed=13, events=None)
    truth = simulate_mission(cfg)
    assignment = BadgeAssignment(cfg=cfg, roster=truth.roster)
    models = SensingModels.default(cfg, truth.plan)

    # 1. How many instrumentation ops does one sense_day perform?
    obs.reset()
    obs.enable()
    _run_sense_day(cfg, truth, assignment, models)
    n_spans = len(obs.tracing.collector.spans)
    n_metric_ops = sum(
        len(obs.metrics.registry.get(name).snapshot()["series"])
        for name in obs.metrics.registry.names()
    )
    obs.reset()
    assert n_spans > 0  # the pipeline really is instrumented

    # 2. Wall time of a telemetry-disabled sense_day (best of 3).
    disabled_s = min(
        _timed(_run_sense_day, cfg, truth, assignment, models) for _ in range(3)
    )

    # 3. Per-op cost of the disabled fast path (span + counter + histogram).
    reps = 100_000
    counter = obs.metrics.counter("bench.noop")
    hist = obs.metrics.histogram("bench.noop_hist")
    t0 = time.perf_counter()
    for _ in range(reps):
        with obs.span("bench.noop"):
            pass
        counter.inc()
        hist.observe(1.0)
    per_op_s = (time.perf_counter() - t0) / reps

    # 4. The instrumentation budget one sense_day could possibly spend.
    estimated_overhead_s = (n_spans + n_metric_ops) * per_op_s
    assert estimated_overhead_s < MAX_OVERHEAD_FRACTION * disabled_s, (
        f"disabled-telemetry overhead {estimated_overhead_s * 1e3:.3f} ms "
        f"exceeds 5% of sense_day ({disabled_s * 1e3:.1f} ms)"
    )


@pytest.mark.tier2
def test_enabled_telemetry_overhead_is_bounded():
    """Even fully enabled, tracing must not dominate the pipeline."""
    cfg = MissionConfig(days=2, seed=13, events=None)
    truth = simulate_mission(cfg)
    assignment = BadgeAssignment(cfg=cfg, roster=truth.roster)
    models = SensingModels.default(cfg, truth.plan)

    disabled_s = min(
        _timed(_run_sense_day, cfg, truth, assignment, models) for _ in range(3)
    )
    obs.reset()
    obs.enable()
    try:
        enabled_s = min(
            _timed(_run_sense_day, cfg, truth, assignment, models) for _ in range(3)
        )
    finally:
        obs.reset()
    # Generous bound: spans/counters are bookkeeping, not work.
    assert enabled_s < disabled_s * 1.5, (
        f"enabled telemetry {enabled_s:.3f}s vs disabled {disabled_s:.3f}s"
    )


def _timed(fn, *args):
    t0 = time.perf_counter()
    fn(*args)
    return time.perf_counter() - t0
