"""Section V deployment statistics.

Paper: ~150 GiB over the 13 instrumented days; an average badge worn
63% of daytime and active 84%; wear compliance decaying from ~80% to
~50% across the mission.
"""

from benchmarks.conftest import write_artifact
from repro.experiments.tables import build_deployment_stats


def test_deployment_stats(benchmark, paper_result, artifact_dir):
    stats = benchmark(build_deployment_stats, paper_result)

    per_day = "\n".join(
        f"  day {day:>2}: worn {frac:.0%}" for day, frac in stats.worn_by_day.items()
    )
    write_artifact(
        artifact_dir, "deployment_stats.txt", f"{stats}\n\nworn by day:\n{per_day}"
    )

    assert stats.n_instrumented_days == 13
    assert stats.n_badges == 7
    assert 110 <= stats.total_gib <= 190          # paper: ~150 GiB
    assert 0.55 <= stats.worn_fraction <= 0.72    # paper: 63%
    assert 0.80 <= stats.active_fraction <= 0.97  # paper: 84%
    early, late = stats.compliance_decay()
    assert early > late + 0.1                     # paper: ~80% -> ~50%
    assert late < 0.60
