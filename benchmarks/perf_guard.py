"""Day-compute performance regression guard.

The fleet-batched sensing API bought a >5x speedup of the per-day hot
path (``compute_day``: wear + sensor synthesis + localization + summary
reduction); this guard keeps it.  It measures

1. a fixed numpy **calibration workload** (pins the machine's array
   throughput), and
2. the **day-compute** path on the standard one-day benchmark mission
   (``MissionConfig(days=2, seed=13, events=None)``, day 2),

then compares the machine-normalized ratio ``day_compute / calibration``
against the checked-in budget (``benchmarks/perf_budget.json``).  A run
more than ``headroom`` (25%) over budget exits non-zero, and every run
writes its raw measurements to ``benchmarks/output/day_compute_guard.json``
for artifact upload and cross-run diffing.

Run it directly::

    PYTHONPATH=src python benchmarks/perf_guard.py
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

BUDGET_PATH = Path(__file__).parent / "perf_budget.json"
REPORT_PATH = Path(__file__).parent / "output" / "day_compute_guard.json"


def calibration_seconds(rounds: int = 3) -> float:
    """Best-of-``rounds`` timing of a fixed array workload.

    Three passes of sqrt/log10/column-cumsum over a 2000x2000 float64
    matrix — a mix of elementwise transcendental and strided traffic
    that tracks how fast this machine runs the pipeline's own numpy
    kernels.  Normalizing by it makes the budget portable between a
    laptop and a CI runner.
    """
    rng = np.random.default_rng(0)
    a = rng.random((2000, 2000))
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        for _ in range(3):
            b = np.sqrt(a)
            b += np.log10(a + 1.0)
            b = np.cumsum(b, axis=0)
        best = min(best, time.perf_counter() - t0)
    return best


def day_compute_seconds(rounds: int = 3) -> float:
    """Best-of-``rounds`` timing of one full instrumented day."""
    from repro.badges.assignment import BadgeAssignment
    from repro.badges.pipeline import SensingModels, make_fleet
    from repro.badges.sdcard import SdCardAccountant
    from repro.core.config import MissionConfig
    from repro.core.rng import RngRegistry
    from repro.crew.behavior import simulate_mission
    from repro.exec.executor import compute_day
    from repro.localization.pipeline import Localizer

    cfg = MissionConfig(days=2, seed=13, events=None)
    truth = simulate_mission(cfg)
    assignment = BadgeAssignment(cfg=cfg, roster=truth.roster)
    models = SensingModels.default(cfg, truth.plan)
    localizer = Localizer(truth.plan, models.beacons)
    best = float("inf")
    for _ in range(rounds):
        rngs = RngRegistry(3)
        fleet = make_fleet(assignment, rngs)
        t0 = time.perf_counter()
        compute_day(
            cfg, truth, 2, assignment, models, localizer, fleet, rngs,
            SdCardAccountant(), None,
        )
        best = min(best, time.perf_counter() - t0)
    return best


def run_guard(rounds: int = 3) -> dict:
    """Measure, compare against the budget, and write the report."""
    budget = json.loads(BUDGET_PATH.read_text())
    calibration_s = calibration_seconds(rounds)
    day_compute_s = day_compute_seconds(rounds)
    ratio = day_compute_s / calibration_s
    limit = budget["day_compute_per_calibration"] * (1.0 + budget["headroom"])
    report = {
        "calibration_s": round(calibration_s, 4),
        "day_compute_s": round(day_compute_s, 4),
        "day_compute_per_calibration": round(ratio, 3),
        "budget_per_calibration": budget["day_compute_per_calibration"],
        "headroom": budget["headroom"],
        "limit_per_calibration": round(limit, 3),
        "ok": ratio <= limit,
    }
    REPORT_PATH.parent.mkdir(exist_ok=True)
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def main() -> int:
    report = run_guard()
    print(json.dumps(report, indent=2))
    if not report["ok"]:
        print(
            f"PERF REGRESSION: day-compute is "
            f"{report['day_compute_per_calibration']:.2f}x the calibration "
            f"workload, limit {report['limit_per_calibration']:.2f}x "
            f"(budget {report['budget_per_calibration']:.2f}x + "
            f"{report['headroom']:.0%} headroom)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
