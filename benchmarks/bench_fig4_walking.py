"""Figure 4: daily walking fractions, days 2-8.

Shape targets from the paper: values within ~0.02-0.10; A most passive;
the energetic pair D, F walking significantly more than B, E; C (while
present) the most mobile of all.
"""

import numpy as np

from benchmarks.conftest import write_artifact
from repro.experiments.figures import fig4, format_series


def test_fig4_walking(benchmark, paper_result, artifact_dir):
    series = benchmark(fig4, paper_result, tuple(range(2, 9)))

    write_artifact(artifact_dir, "fig4_walking.txt", format_series(series))

    values = [v for per_day in series.values() for v in per_day.values()]
    assert 0.01 < min(values) and max(values) < 0.15  # the paper's band

    means = {astro: np.mean(list(per_day.values())) for astro, per_day in series.items()}
    assert min(means, key=means.get) == "A"                 # A most passive
    assert means["C"] == max(means.values())                # C most mobile
    assert min(means["D"], means["F"]) > max(means["B"], means["E"])
