"""Benchmark fixtures: the full paper mission, simulated once per session.

Every evaluation benchmark regenerates its table/figure from this single
14-day run (the paper's exact mission length and scripted events), then
times the analysis step itself.  Artifacts are written to
``benchmarks/output/`` so the regenerated rows/series can be inspected
and compared against EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.config import MissionConfig
from repro.experiments.mission import run_mission

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def paper_cfg() -> MissionConfig:
    """The default configuration *is* the paper's mission."""
    return MissionConfig()


@pytest.fixture(scope="session")
def paper_result(paper_cfg):
    """Full 14-day mission through the entire stack (built once)."""
    return run_mission(paper_cfg)


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


def write_artifact(directory: Path, name: str, text: str) -> None:
    """Persist a regenerated table/figure and echo it to the log."""
    path = directory / name
    path.write_text(text + "\n")
    print(f"\n===== {name} =====\n{text}\n")
