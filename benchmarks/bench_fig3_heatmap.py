"""Figure 3: astronaut A's whole-mission occupancy heatmap.

28 cm x 28 cm log-scale histogram of A's localized positions; the
paper's visible finding is that impaired A keeps to the middle of rooms
and avoids corners, unlike the rest of the crew.
"""

from benchmarks.conftest import write_artifact
from repro.experiments.figures import fig3, format_fig3


def test_fig3_heatmap(benchmark, paper_result, artifact_dir):
    heatmap = benchmark(fig3, paper_result, "A")

    plan = paper_result.truth.plan
    text = format_fig3(heatmap)
    lines = [text, ""]
    for astro in ("A", "D", "F"):
        hm = fig3(paper_result, astro)
        main_room = "storage" if astro == "A" else "workshop"
        ratio = hm.center_vs_corner_ratio(plan.room(main_room).rect)
        lines.append(f"{astro} center/corner ratio in {main_room}: {ratio:.2f}")
    write_artifact(artifact_dir, "fig3_heatmap.txt", "\n".join(lines))

    assert heatmap.cell_m == 0.28
    assert heatmap.total_seconds() > 10 * 3600.0

    a_ratio = fig3(paper_result, "A").center_vs_corner_ratio(plan.room("storage").rect)
    d_ratio = fig3(paper_result, "D").center_vs_corner_ratio(plan.room("workshop").rect)
    f_ratio = fig3(paper_result, "F").center_vs_corner_ratio(plan.room("workshop").rect)
    assert a_ratio > 3 * d_ratio
    assert a_ratio > 3 * f_ratio
