"""Localization quality on the full mission.

The paper: "the room the badge located in was detected perfectly" —
courtesy of the metal walls and the carefully placed 27 beacons.
"""

from benchmarks.conftest import write_artifact
from repro.experiments.accuracy import localization_accuracy


def test_localization_accuracy(benchmark, paper_result, artifact_dir):
    report = benchmark(localization_accuracy, paper_result.sensing)
    write_artifact(artifact_dir, "localization_accuracy.txt", str(report))

    assert report.room_accuracy > 0.995
    assert report.known_fraction > 0.95
    for room, accuracy in report.room_accuracy_by_room.items():
        assert accuracy > (0.85 if room == "main" else 0.97), room
