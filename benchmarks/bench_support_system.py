"""Section VI support-system scenarios under failure injection.

Exercises the prototype of the envisioned distributed support system:
the day-12 contradictory-instruction incident over the 20-minute Earth
link, replica failover (what the unreplicated reference badge lacked),
the multi-party authorization round, and a day of hydration tracking.
"""

import numpy as np

from benchmarks.conftest import write_artifact
from repro.core.engine import Simulator
from repro.support.authorization import AuthorizationService, EarthVoter, ProposalState
from repro.support.bus import Network
from repro.support.hydration import HydrationTracker, fluid_events_from_truth
from repro.support.mission_control import EarthLink
from repro.support.replication import ReplicatedService


def day12_scenario():
    """Crew acts autonomously; a stale command arrives; reprimand."""
    sim = Simulator()
    net = Network(sim)
    link = EarthLink.build(net, sim)  # 20-minute one-way delay
    link.mission_control.issue("rover-route", "south")
    sim.run_until(600.0)
    link.habitat_agent.decide_locally("rover-route", "north")
    sim.run()
    return link


def failover_scenario():
    sim = Simulator()
    net = Network(sim, default_latency_s=0.01)
    svc = ReplicatedService.build(net, sim)
    for k in range(50):
        svc.submit(f"update-{k}")
    sim.run_until(10.0)
    net.crash("svc-a")
    sim.run_until(20.0)
    accepted_after = svc.submit("post-failover")
    sim.run_until(21.0)
    return svc, accepted_after


def authorization_scenario():
    sim = Simulator()
    net = Network(sim)
    auth = AuthorizationService("auth", sim, crew=list("ABDEF"))
    net.register(auth)
    net.register(EarthVoter("earth", sim, "auth"))
    net.set_link_latency("auth", "earth", 1200.0)
    net.set_link_latency("earth", "auth", 1200.0)
    routine = auth.propose("B", "raise sampling rate")
    for astro in "ADEF":
        auth.vote(routine.proposal_id, astro, True)
    net.partition("auth", "earth")  # comms blackout during the emergency
    emergency = auth.propose("B", "vent module 3", emergency=True)
    auth.vote(emergency.proposal_id, "A", True)
    auth.vote(emergency.proposal_id, "D", True)
    net.heal("auth", "earth")  # blackout ends; the routine round resumes
    sim.run_until(4000.0)
    return routine, emergency


def test_day12_contradiction(benchmark, artifact_dir):
    link = benchmark(day12_scenario)
    contradiction = link.habitat_agent.contradictions[0]
    write_artifact(
        artifact_dir, "support_day12.txt",
        f"command issued t=0, local decision t=600, conflict detected "
        f"t={contradiction.detected_at:.0f} (staleness "
        f"{contradiction.staleness_s:.0f} s); reprimands received: "
        f"{link.habitat_agent.reprimands_received}",
    )
    assert contradiction.staleness_s == 1200.0
    assert link.habitat_agent.reprimands_received == 1


def test_replica_failover(benchmark, artifact_dir):
    svc, accepted_after = benchmark(failover_scenario)
    write_artifact(
        artifact_dir, "support_failover.txt",
        f"backup promoted at t={svc.backup.took_over_at:.1f} s; state "
        f"entries preserved: {len(svc.backup.state)}; writes accepted "
        f"after failover: {accepted_after}",
    )
    assert svc.backup.is_primary
    assert accepted_after
    assert len(svc.backup.state) >= 51


def test_authorization_round(benchmark, artifact_dir):
    routine, emergency = benchmark(authorization_scenario)
    write_artifact(
        artifact_dir, "support_authorization.txt",
        f"routine proposal: {routine.state.value} at t={routine.decided_at:.0f}; "
        f"emergency proposal (Earth dark): {emergency.state.value} at "
        f"t={emergency.decided_at:.0f}",
    )
    assert routine.state is ProposalState.APPROVED
    assert routine.decided_at >= 2400.0   # waited the full Earth RTT
    assert emergency.state is ProposalState.APPROVED
    assert emergency.decided_at < 60.0    # no wait when lives at stake


def test_hydration_day(benchmark, paper_result, artifact_dir):
    truth = paper_result.truth

    def run_day():
        sim = Simulator()
        tracker = HydrationTracker("hydro", sim, list(truth.roster.ids))
        Network(sim).register(tracker)
        for event in fluid_events_from_truth(truth, 5):
            tracker.ingest(event)
        return tracker

    tracker = benchmark(run_day)
    balances = "\n".join(
        f"  {astro}: {tracker.balance(astro):+.0f} ml ({state.events} events)"
        for astro, state in sorted(tracker.states.items())
    )
    write_artifact(
        artifact_dir, "support_hydration.txt",
        f"end-of-day fluid balances (day 5):\n{balances}\n"
        f"dehydration alerts: {len(tracker.alerts)}",
    )
    assert all(np.isfinite(tracker.balance(a)) for a in truth.roster.ids)
    assert sum(s.events for s in tracker.states.values()) > 20
