"""Performance benchmarks of the pipeline's hot paths.

These are conventional micro/meso benchmarks (what pytest-benchmark is
for): one simulated day of crew behavior, one fleet-day of sensing, one
fleet-day of localization, the full day-compute path (the unit the
perf-regression guard in ``benchmarks/perf_guard.py`` budgets), and the
speech detector.
"""

import numpy as np
import pytest

from repro.analytics.speech import speech_windows
from repro.badges.assignment import BadgeAssignment
from repro.badges.pipeline import SensingModels, make_fleet, sense_day
from repro.badges.sdcard import SdCardAccountant
from repro.core.config import MissionConfig
from repro.core.rng import RngRegistry
from repro.crew.behavior import simulate_mission
from repro.exec.executor import compute_day
from repro.localization.pipeline import Localizer


@pytest.fixture(scope="module")
def one_day_cfg():
    return MissionConfig(days=2, seed=13, events=None)


@pytest.fixture(scope="module")
def one_day_truth(one_day_cfg):
    return simulate_mission(one_day_cfg)


def test_perf_crew_simulation_day(benchmark, one_day_cfg):
    benchmark.pedantic(
        simulate_mission, args=(one_day_cfg,), rounds=3, iterations=1
    )


def test_perf_sense_day(benchmark, one_day_cfg, one_day_truth):
    assignment = BadgeAssignment(cfg=one_day_cfg, roster=one_day_truth.roster)
    models = SensingModels.default(one_day_cfg, one_day_truth.plan)

    def run():
        rngs = RngRegistry(3)
        fleet = make_fleet(assignment, rngs)
        # Benchmark the production path: SD-card accounting included.
        return sense_day(one_day_truth, 2, assignment, models, fleet, rngs,
                         SdCardAccountant())

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_perf_localize_fleet(benchmark, one_day_cfg, one_day_truth):
    assignment = BadgeAssignment(cfg=one_day_cfg, roster=one_day_truth.roster)
    models = SensingModels.default(one_day_cfg, one_day_truth.plan)
    rngs = RngRegistry(3)
    fleet = make_fleet(assignment, rngs)
    observations, __ = sense_day(one_day_truth, 2, assignment, models, fleet, rngs,
                                 SdCardAccountant())
    badge_ids = list(observations)
    localizer = Localizer(one_day_truth.plan, models.beacons)

    results = benchmark(
        localizer.localize_fleet,
        [observations[b].ble_rssi for b in badge_ids],
        [observations[b].active for b in badge_ids],
    )
    assert results[0].known_fraction() > 0.9


def test_perf_day_compute(benchmark, one_day_cfg, one_day_truth):
    """The whole per-day unit of work the executor fans out."""
    assignment = BadgeAssignment(cfg=one_day_cfg, roster=one_day_truth.roster)
    models = SensingModels.default(one_day_cfg, one_day_truth.plan)
    localizer = Localizer(one_day_truth.plan, models.beacons)

    def run():
        rngs = RngRegistry(3)
        fleet = make_fleet(assignment, rngs)
        return compute_day(
            one_day_cfg, one_day_truth, 2, assignment, models, localizer,
            fleet, rngs, SdCardAccountant(), None,
        )

    outcome = benchmark.pedantic(run, rounds=3, iterations=1)
    assert outcome.summaries


def test_perf_speech_detector(benchmark):
    n = 14 * 3600
    rng = np.random.default_rng(0)
    from repro.analytics.dataset import BadgeDaySummary

    voice = rng.normal(55.0, 10.0, n).astype(np.float32)
    summary = BadgeDaySummary(
        badge_id=0, day=2, t0=0.0, dt=1.0,
        active=np.ones(n, dtype=bool), worn=np.ones(n, dtype=bool),
        room=np.zeros(n, dtype=np.int8),
        x=np.zeros(n, dtype=np.float32), y=np.zeros(n, dtype=np.float32),
        accel_rms=np.zeros(n, dtype=np.float32), voice_db=voice,
        dominant_pitch_hz=np.full(n, 120.0, dtype=np.float32),
        pitch_stability=np.full(n, 0.4, dtype=np.float32),
        sound_db=voice,
    )
    windows = benchmark(speech_windows, summary)
    assert 0.0 <= windows.fraction() <= 1.0
