"""Figure 5: the death-day timeline.

Speech fraction + location per astronaut on day 4.  Shape targets: the
12:30 lunch registers as a loud whole-crew kitchen gathering; shortly
after C's death the survivors hold an unplanned consolation meeting in
the kitchen (~15:20) that is clearly quieter than lunch; C's track goes
dark after 15:00.
"""

import numpy as np

from benchmarks.conftest import write_artifact
from repro.analytics.meetings import detect_meetings
from repro.core.units import hhmm, parse_hhmm
from repro.experiments.figures import fig5, format_fig5


def test_fig5_timeline(benchmark, paper_result, artifact_dir):
    timeline = benchmark(fig5, paper_result)

    day = paper_result.cfg.events.death_day
    kitchen = paper_result.truth.plan.index_of("kitchen")
    meetings = [
        m for m in detect_meetings(paper_result.sensing, day, min_participants=4)
        if m.room == kitchen
    ]
    lunch = min(meetings, key=lambda m: abs(m.t0 - parse_hhmm("12:30")))
    conso = min(
        meetings,
        key=lambda m: abs(m.t0 - parse_hhmm(paper_result.cfg.events.consolation_time)),
    )

    text = format_fig5(paper_result, timeline)
    text += (
        f"\n\nlunch meeting {hhmm(lunch.t0)}-{hhmm(lunch.t1)}: "
        f"{lunch.mean_voice_db:.1f} dB, {len(lunch.badge_ids)} badges"
        f"\nconsolation meeting {hhmm(conso.t0)}-{hhmm(conso.t1)}: "
        f"{conso.mean_voice_db:.1f} dB, {len(conso.badge_ids)} badges"
    )
    write_artifact(artifact_dir, "fig5_timeline.txt", text)

    assert abs(conso.t0 - parse_hhmm("15:20")) < 900
    assert len(conso.badge_ids) >= 4                      # everyone left
    assert conso.mean_voice_db < lunch.mean_voice_db - 5  # clearly quieter

    c_track = timeline.track("C")
    death_bin = int((parse_hhmm("15:00") - timeline.t0) / timeline.bin_s)
    assert (c_track.dominant_room[death_bin + 1:] == -1).all()
    assert np.any(c_track.dominant_room[:death_bin] >= 0)
