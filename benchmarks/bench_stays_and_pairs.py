"""Section V in-text claims: stay durations and pairwise relations.

Paper: biolab work sessions ~2.5 h while office/workshop sessions run
about twice that; A and F talked privately ~5 h more than D and E and
spent ~10 h more together across all meetings.
"""

import numpy as np

from benchmarks.conftest import write_artifact
from repro.analytics.occupancy import stay_durations_by_room
from repro.experiments.tables import build_section5_claims


def test_stays_and_pairs(benchmark, paper_result, artifact_dir):
    claims = benchmark(build_section5_claims, paper_result)

    durations = stay_durations_by_room(paper_result.sensing)
    extra = "\n".join(
        f"  {room}: n={len(v)} median={np.median(v) / 3600:.1f} h "
        f"max={max(v) / 3600:.1f} h"
        for room, v in sorted(durations.items())
        if room in ("office", "workshop", "biolab")
    )
    write_artifact(artifact_dir, "stays_and_pairs.txt", f"{claims}\n\nsessions:\n{extra}")

    # Biolab sessions bounded by the meal rhythm; absorbed office and
    # workshop workers run much longer.
    assert 1.5 <= claims.biolab_stay_h <= 3.2
    longest_absorbing = max(durations["office"] + durations["workshop"]) / 3600.0
    assert longest_absorbing >= 4.0

    # Pairwise relations: A-F clearly above D-E on both measures.
    assert claims.af_private_h > claims.de_private_h + 1.0
    assert claims.af_meetings_h > claims.de_meetings_h + 2.0
