"""Table I: normalized per-astronaut parameters.

Paper values: company A .79 B 1.00 C n/a D .94 E .74 F .89; authority
A .86 B 1.00 C n/a D .96 E .83 F .96; talking A .63 B .60 C 1.00 D .63
E .57 F .76; walking A .39 B .45 C 1.00 D .70 E .49 F .75.  The bench
regenerates the table and pins the orderings and the anchor values.
"""

from benchmarks.conftest import write_artifact
from repro.experiments.tables import build_table1

PAPER = {
    "company": {"A": 0.79, "B": 1.00, "C": None, "D": 0.94, "E": 0.74, "F": 0.89},
    "authority": {"A": 0.86, "B": 1.00, "C": None, "D": 0.96, "E": 0.83, "F": 0.96},
    "talking": {"A": 0.63, "B": 0.60, "C": 1.00, "D": 0.63, "E": 0.57, "F": 0.76},
    "walking": {"A": 0.39, "B": 0.45, "C": 1.00, "D": 0.70, "E": 0.49, "F": 0.75},
}


def test_table1(benchmark, paper_result, artifact_dir):
    table = benchmark(build_table1, paper_result)

    lines = [str(table), "", "paper reference:"]
    for column, values in PAPER.items():
        row = "  ".join(
            f"{a}:{'n/a' if v is None else f'{v:.2f}'}" for a, v in values.items()
        )
        lines.append(f"  {column:<9} {row}")
    write_artifact(artifact_dir, "table1.txt", "\n".join(lines))

    # C excluded from centrality, as in the paper.
    assert table.company["C"] is None
    assert table.authority["C"] is None

    # Normalization anchors.
    assert table.talking["C"] == 1.0
    assert table.walking["C"] == 1.0

    # Walking ordering: C > F > D > E ~ B > A.
    w = table.walking
    assert w["C"] > w["F"] > w["D"] > w["A"]
    assert w["E"] > w["A"] and w["B"] > w["A"]
    assert abs(w["A"] - PAPER["walking"]["A"]) < 0.12

    # Talking: C clearly above everyone, E at the bottom of the humans.
    t = table.talking
    assert all(t["C"] >= t[x] + 0.2 for x in "ABDEF")
    assert t["E"] == min(t[x] for x in "ABDEF")

    # Company/authority: E at the bottom, B near the top, spread < 40%.
    c = {a: v for a, v in table.company.items() if v is not None}
    assert min(c, key=c.get) in ("E", "A")
    assert c["B"] >= sorted(c.values())[-2] - 0.1
    assert min(c.values()) > 0.6
