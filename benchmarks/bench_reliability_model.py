"""The analytic reliability model's speed advantage, and its price.

Two guards: (1) sweeping the fault-rate space in closed form must stay
at least 100x cheaper *per regime* than measuring one regime empirically
— that gap is the entire reason the worst-case search can afford to
score dozens of regimes before spending the chaos suite's budget; (2) a
full banded prediction (quantile bisections included) must stay cheap
enough to run inline in CI on every campaign.
"""

from __future__ import annotations

import time

import dataclasses

from benchmarks.conftest import write_artifact
from repro.core.config import MissionConfig
from repro.faults.campaign import FaultCampaign
from repro.faults.scenario import run_support_scenario
from repro.reliability import (
    CoverageModel,
    ReliabilityModel,
    default_coverage_config,
    sweep_coverage_regimes,
    sweep_regimes,
)

#: The acceptance floor: analytic regime scoring vs empirical replay.
MIN_ANALYTIC_SPEEDUP = 100.0

N_REGIMES = 64


def test_analytic_sweep_beats_empirical_by_100x(artifact_dir):
    campaign = FaultCampaign.reference(days=14, seed=0)

    # Empirical cost: one seeded campaign through the real stack
    # (generation + simulation + reporting), best of three.
    cfg = MissionConfig(days=14, seed=7)
    empirical_s = []
    for _ in range(3):
        t0 = time.perf_counter()
        run_support_scenario(cfg, campaign.generate())
        empirical_s.append(time.perf_counter() - t0)
    empirical_s = min(empirical_s)

    # Analytic cost: the same regime-space, scored in closed form.
    t0 = time.perf_counter()
    regimes = sweep_regimes(
        base=campaign, n_regimes=N_REGIMES, seed=0, top_k=3)
    analytic_total_s = time.perf_counter() - t0
    analytic_s = analytic_total_s / N_REGIMES

    speedup = empirical_s / analytic_s
    write_artifact(
        artifact_dir, "reliability_model_speedup.txt",
        f"empirical campaign:  {empirical_s * 1e3:8.1f} ms\n"
        f"analytic sweep:      {analytic_total_s * 1e3:8.1f} ms "
        f"for {N_REGIMES} regimes ({analytic_s * 1e6:.0f} us each)\n"
        f"per-regime speedup:  {speedup:8.0f}x (floor: "
        f"{MIN_ANALYTIC_SPEEDUP:.0f}x)\n"
        f"top regime: {regimes[0].to_text()}\n",
    )
    assert len(regimes) == 3
    assert speedup >= MIN_ANALYTIC_SPEEDUP, (
        f"analytic scoring only {speedup:.0f}x faster than empirical "
        f"replay ({analytic_s * 1e6:.0f} us vs {empirical_s * 1e3:.1f} ms)"
    )


def test_coverage_predictor_beats_gated_mission_by_100x(artifact_dir):
    """The sensing-level counterpart: a full banded coverage prediction
    vs one empirical gated-mission replay of the same campaign."""
    campaign = FaultCampaign.coverage_reference(days=14, seed=0)
    cfg = default_coverage_config(campaign)

    # Empirical cost: generate the plan, assemble the mission, gate it.
    from repro.experiments.mission import run_mission

    empirical_s = []
    for _ in range(2):
        mission_cfg = dataclasses.replace(cfg, fault_plan=campaign.generate())
        t0 = time.perf_counter()
        run_mission(mission_cfg, quality="gate")
        empirical_s.append(time.perf_counter() - t0)
    empirical_s = min(empirical_s)

    # Analytic cost: a full banded prediction, best of three.
    analytic_s = []
    for _ in range(3):
        t0 = time.perf_counter()
        prediction = CoverageModel(campaign, cfg).predict()
        analytic_s.append(time.perf_counter() - t0)
    analytic_s = min(analytic_s)

    # And the regime-search amortization on top of it.
    t0 = time.perf_counter()
    regimes = sweep_coverage_regimes(
        base=campaign, n_regimes=N_REGIMES, seed=0, top_k=3)
    sweep_s = (time.perf_counter() - t0) / N_REGIMES

    speedup = empirical_s / analytic_s
    write_artifact(
        artifact_dir, "coverage_model_speedup.txt",
        f"empirical gated mission: {empirical_s * 1e3:8.1f} ms\n"
        f"analytic prediction:     {analytic_s * 1e3:8.1f} ms "
        f"({speedup:.0f}x, floor: {MIN_ANALYTIC_SPEEDUP:.0f}x)\n"
        f"sweep per regime:        {sweep_s * 1e6:8.0f} us\n"
        f"top regime: {regimes[0].to_text()}\n",
    )
    assert len(regimes) == 3
    assert prediction.coverage.lo <= prediction.coverage.hi
    assert speedup >= MIN_ANALYTIC_SPEEDUP, (
        f"coverage prediction only {speedup:.0f}x faster than a gated "
        f"mission ({analytic_s * 1e3:.1f} ms vs {empirical_s * 1e3:.1f} ms)"
    )


def test_full_prediction_cost(benchmark, artifact_dir):
    """A banded predict() — quantile bisections and the composed-chain
    system availability included — on the 14-day reference campaign."""
    campaign = FaultCampaign.reference(days=14, seed=0)

    def predict():
        return ReliabilityModel(campaign).predict()

    prediction = benchmark(predict)
    write_artifact(
        artifact_dir, "reliability_model_prediction.txt",
        prediction.to_text() + "\n",
    )
    assert prediction.availability["relay"].lo < \
        prediction.availability["relay"].hi
    # The prediction that validation pins: sane, ordered, populated.
    assert set(prediction.delivery) == {"submit", "status"}
    assert prediction.system_availability is not None
